package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one structured trace record. Events are written as JSONL, one
// object per line; T is seconds since the tracer started, taken from the
// monotonic clock, so intervals are immune to wall-clock steps.
//
// The schema (validated by ValidateTrace):
//
//	t       float64  required, ≥ 0, non-decreasing within a file
//	type    string   required, one of EventTypes
//	proto   string   run_start / run_end: protocol name
//	kind    string   msg/broadcast: message kind; fault: fault kind;
//	                 straggler: the gather's expected message kind
//	from,to int      endpoints (coordinator is -1); omitted when absent
//	round   int      round events: the 1-based round number
//	bits    int      msg events: payload cost in bits
//	words   float64  run_end / upload: words
//	n       int      type-specific count (servers, rows, attempt, …)
//	level   int      merge/forward: tree height of the acting node (leaves 0)
//	err     string   run_end: failure, empty on success
//	detail  string   free-form annotation
type Event struct {
	T      float64 `json:"t"`
	Type   string  `json:"type"`
	Proto  string  `json:"proto,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	From   *int    `json:"from,omitempty"`
	To     *int    `json:"to,omitempty"`
	Round  int64   `json:"round,omitempty"`
	Bits   int64   `json:"bits,omitempty"`
	Words  float64 `json:"words,omitempty"`
	N      int64   `json:"n,omitempty"`
	Level  int     `json:"level,omitempty"`
	Err    string  `json:"err,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// EventTypes is the closed set of trace event types the runtime emits.
var EventTypes = map[string]bool{
	"run_start":  true, // a protocol run began (proto, n = servers)
	"run_end":    true, // a protocol run finished (proto, words, err)
	"round":      true, // a synchronous communication round started (round)
	"msg":        true, // a metered message (from, to, kind, bits)
	"broadcast":  true, // a coordinator broadcast (kind, n = servers)
	"fault":      true, // an injected fault (kind = drop/delay/duplicate/reorder/partition)
	"straggler":  true, // a straggler timeout during a gather (kind)
	"retry":      true, // a TCP dial retry (n = attempt)
	"upload":     true, // a monitoring upload (from, n = rows, words)
	"announce":   true, // a monitoring bootstrap mass report (from, words)
	"threshold":  true, // a monitoring threshold broadcast (words = new threshold)
	"merge":      true, // a tree-node merge of child summaries (level, n = children)
	"forward":    true, // a tree-node summary forwarded to its parent (level, from, to)
	"checkpoint": true, // a service checkpoint written (from, n = sketch rows, detail = path)
	"query":      true, // a service query answered (kind = endpoint)
	"note":       true, // free-form annotation (detail)
}

// Tracer writes Events as JSONL. It is safe for concurrent use (protocol
// goroutines share one tracer); events are buffered, so call Close (or
// Flush) before reading the output.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	enc    *json.Encoder
	start  time.Time
	lastT  float64
	n      int64
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// NewTracerFile creates (truncating) the named file and returns a tracer
// writing to it; Close closes the file.
func NewTracerFile(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Emit writes one event, stamping its T from the monotonic clock. The
// timestamp is forced non-decreasing so a trace file always validates.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.T = time.Since(t.start).Seconds()
	if e.T < t.lastT {
		e.T = t.lastT
	}
	t.lastT = e.T
	t.n++
	t.enc.Encode(e) // an IO error here latches into the writer; Close reports it
}

// Events returns the number of events emitted.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Flush flushes buffered events to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and, when the tracer owns its file, closes it.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ValidateTrace checks a JSONL trace against the Event schema: every line
// must parse, carry a known type, a non-negative and non-decreasing
// timestamp, and the per-type required fields. It returns the event count.
func ValidateTrace(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	last := -1.0
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return n, fmt.Errorf("obs: trace event %d: %w", n+1, err)
		}
		n++
		if e.Type == "" || !EventTypes[e.Type] {
			return n, fmt.Errorf("obs: trace event %d: unknown type %q", n, e.Type)
		}
		if e.T < 0 {
			return n, fmt.Errorf("obs: trace event %d: negative timestamp %v", n, e.T)
		}
		if e.T < last {
			return n, fmt.Errorf("obs: trace event %d: timestamp %v before %v", n, e.T, last)
		}
		last = e.T
		switch e.Type {
		case "run_start", "run_end":
			if e.Proto == "" {
				return n, fmt.Errorf("obs: trace event %d: %s without proto", n, e.Type)
			}
		case "msg":
			if e.Kind == "" || e.From == nil || e.To == nil {
				return n, fmt.Errorf("obs: trace event %d: msg needs kind/from/to", n)
			}
			if e.Bits < 0 {
				return n, fmt.Errorf("obs: trace event %d: negative bits", n)
			}
		case "broadcast", "fault", "straggler":
			if e.Kind == "" {
				return n, fmt.Errorf("obs: trace event %d: %s without kind", n, e.Type)
			}
		case "round":
			if e.Round <= 0 {
				return n, fmt.Errorf("obs: trace event %d: round without number", n)
			}
		case "merge":
			if e.Level < 1 || e.N < 1 {
				return n, fmt.Errorf("obs: trace event %d: merge needs level/n", n)
			}
		case "forward":
			if e.Level < 1 || e.From == nil || e.To == nil {
				return n, fmt.Errorf("obs: trace event %d: forward needs level/from/to", n)
			}
		case "checkpoint":
			if e.From == nil || e.N < 0 {
				return n, fmt.Errorf("obs: trace event %d: checkpoint needs from and n ≥ 0", n)
			}
		case "query":
			if e.Kind == "" {
				return n, fmt.Errorf("obs: trace event %d: query without kind", n)
			}
		}
	}
	return n, nil
}

// ValidateTraceFile runs ValidateTrace on the named file.
func ValidateTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ValidateTrace(f)
}
