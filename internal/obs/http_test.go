package obs

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestDebugServerGracefulShutdown is the regression test for the severed-
// scrape bug: ServeDebug used srv.Close, which killed in-flight requests
// mid-body. Shutdown must let a slow handler finish (within the context's
// deadline) and still return promptly.
func TestDebugServerGracefulShutdown(t *testing.T) {
	s, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	s.Handle("/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	}))
	s.Start()

	var body string
	var getErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			getErr = err
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		body, getErr = string(b), err
	}()
	<-entered

	// Shut down while the request is in flight, releasing the handler just
	// after: a graceful drain must deliver the full body.
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight request severed by shutdown: %v", getErr)
	}
	if body != "done" {
		t.Fatalf("in-flight request body = %q, want %q", body, "done")
	}
	// The listener is released: the same address can be rebound.
	ln2, err := NewDebugServer(s.Addr())
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	ln2.Shutdown(context.Background())
}

func TestDebugServerHandleAfterStartPanics(t *testing.T) {
	s, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
		if recover() == nil {
			t.Error("Handle after Start must panic")
		}
	}()
	s.Handle("/late", http.NotFoundHandler())
}

func TestDebugServerShutdownWithoutStart(t *testing.T) {
	s, err := NewDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Start: %v", err)
	}
}
