package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Observer is the single handle the runtime threads through every layer:
// each instrumentation point calls one method, which updates the metrics
// registry and (when tracing) appends a trace event.
//
// A nil *Observer is the no-op observer: every method returns immediately on
// a nil receiver, so hot paths pay a nil check and nothing else when
// observability is disabled. Construct one with NewObserver, install a
// process-wide one with SetDefault, or pass one per run via the runtime's
// WithObserver option.
type Observer struct {
	reg *Registry
	tr  *Tracer

	// Cached handles for the hot counters, resolved once at construction so
	// per-message work is a couple of atomic adds.
	bitsTotal    *Counter
	msgsTotal    *Counter
	roundsTotal  *Counter
	msgBits      *Histogram
	bytesSent    *Counter
	bytesRecv    *Counter
	dialRetries  *Counter
	stragglers   *Counter
	fdShrinks    *Counter
	fdDelta      *Gauge
	fdShrinkRows *Histogram
	svsSampled   *Counter
	svsCands     *Counter
	poolCalls    *Counter
	poolHelpers  *Counter
	poolWidth    *Gauge
	rowsIngested *Counter
	rowsSparse   *Counter
	monUploads   *Counter
	monAnnounces *Counter
	monBcasts    *Counter
	treeMerges   *Counter
	treeForwards *Counter
	runsStarted  *Counter
	runsOK       *Counter
	runsErr      *Counter
	checkpoints  *Counter
	queries      *Counter

	mu          sync.Mutex
	byFrom      map[int]*Counter    // comm.bits.from.<endpoint>
	byKind      map[string]*Counter // comm.bits.kind.<kind>
	faults      map[string]*Counter // faults.<kind>
	mergeLevels map[int]*Counter    // tree.merges.level.<level>
}

// NewObserver returns an observer recording into reg (required) and, when tr
// is non-nil, appending trace events to it.
func NewObserver(reg *Registry, tr *Tracer) *Observer {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Observer{
		reg:          reg,
		tr:           tr,
		bitsTotal:    reg.Counter("comm.bits_total"),
		msgsTotal:    reg.Counter("comm.messages_total"),
		roundsTotal:  reg.Counter("comm.rounds_total"),
		msgBits:      reg.Histogram("comm.message_bits", ExpBuckets(64, 4, 16)),
		bytesSent:    reg.Counter("tcp.bytes_sent"),
		bytesRecv:    reg.Counter("tcp.bytes_recv"),
		dialRetries:  reg.Counter("tcp.dial_retries"),
		stragglers:   reg.Counter("straggler.timeouts"),
		fdShrinks:    reg.Counter("fd.shrinks"),
		fdDelta:      reg.Gauge("fd.shrink_delta_total"),
		fdShrinkRows: reg.Histogram("fd.shrink_rows", ExpBuckets(1, 2, 12)),
		svsSampled:   reg.Counter("svs.sampled_rows"),
		svsCands:     reg.Counter("svs.candidate_rows"),
		poolCalls:    reg.Counter("pool.for_calls"),
		poolHelpers:  reg.Counter("pool.helpers_recruited"),
		poolWidth:    reg.Gauge("pool.width"),
		rowsIngested: reg.Counter("ingest.rows_total"),
		rowsSparse:   reg.Counter("ingest.sparse_rows_total"),
		monUploads:   reg.Counter("monitoring.uploads"),
		monAnnounces: reg.Counter("monitoring.announces"),
		monBcasts:    reg.Counter("monitoring.broadcasts"),
		treeMerges:   reg.Counter("tree.merges"),
		treeForwards: reg.Counter("tree.forwards"),
		runsStarted:  reg.Counter("runs.started"),
		runsOK:       reg.Counter("runs.ok"),
		runsErr:      reg.Counter("runs.err"),
		checkpoints:  reg.Counter("service.checkpoints"),
		queries:      reg.Counter("service.queries"),
		byFrom:       make(map[int]*Counter),
		byKind:       make(map[string]*Counter),
		faults:       make(map[string]*Counter),
		mergeLevels:  make(map[int]*Counter),
	}
}

// Registry returns the observer's metrics registry (nil on a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's tracer, which may be nil.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

var defaultObs atomic.Pointer[Observer]

// Default returns the process-wide observer installed by SetDefault, or nil
// (the no-op observer) when none is installed. Instrumented layers that are
// not handed an observer explicitly fall back to this.
func Default() *Observer { return defaultObs.Load() }

// SetDefault installs o as the process-wide fallback observer. Passing nil
// disables the fallback again.
func SetDefault(o *Observer) { defaultObs.Store(o) }

func (o *Observer) fromCounter(ep int) *Counter {
	o.mu.Lock()
	c, ok := o.byFrom[ep]
	if !ok {
		c = o.reg.Counter(fmt.Sprintf("comm.bits.from.%d", ep))
		o.byFrom[ep] = c
	}
	o.mu.Unlock()
	return c
}

func (o *Observer) kindCounter(kind string) *Counter {
	o.mu.Lock()
	c, ok := o.byKind[kind]
	if !ok {
		c = o.reg.Counter("comm.bits.kind." + kind)
		o.byKind[kind] = c
	}
	o.mu.Unlock()
	return c
}

// RecordMessage charges one metered message: from/to are node IDs
// (coordinator −1), kind the protocol message kind, bits its metered cost.
// Together with RecordRound this implements the comm package's Recorder
// hook, so observer totals are taken at exactly the metering point and can
// never drift from the communication ledger.
func (o *Observer) RecordMessage(from, to int, kind string, bits int64) {
	if o == nil {
		return
	}
	o.bitsTotal.Add(bits)
	o.msgsTotal.Inc()
	o.msgBits.Observe(float64(bits))
	o.fromCounter(from).Add(bits)
	o.kindCounter(kind).Add(bits)
	if o.tr != nil {
		f, t := from, to
		o.tr.Emit(Event{Type: "msg", Kind: kind, From: &f, To: &t, Bits: bits})
	}
}

// RecordRound counts one synchronous communication round (Recorder hook).
func (o *Observer) RecordRound() {
	if o == nil {
		return
	}
	o.roundsTotal.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "round", Round: o.roundsTotal.Value()})
	}
}

// RunStart marks the start of a protocol run over n servers.
func (o *Observer) RunStart(proto string, n int) {
	if o == nil {
		return
	}
	o.runsStarted.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "run_start", Proto: proto, N: int64(n)})
	}
}

// RunEnd marks the end of a protocol run with its total word cost and error.
func (o *Observer) RunEnd(proto string, words float64, err error) {
	if o == nil {
		return
	}
	msg := ""
	if err != nil {
		o.runsErr.Inc()
		msg = err.Error()
	} else {
		o.runsOK.Inc()
	}
	if o.tr != nil {
		o.tr.Emit(Event{Type: "run_end", Proto: proto, Words: words, Err: msg})
	}
}

// Broadcast marks a coordinator broadcast of kind to n servers.
func (o *Observer) Broadcast(kind string, n int) {
	if o == nil {
		return
	}
	if o.tr != nil {
		o.tr.Emit(Event{Type: "broadcast", Kind: kind, N: int64(n)})
	}
}

// TransportBytes counts wire bytes on the TCP transport (sent=false means
// received). This is raw framing bytes, distinct from the metered bit cost.
func (o *Observer) TransportBytes(sent bool, n int64) {
	if o == nil || n <= 0 {
		return
	}
	if sent {
		o.bytesSent.Add(n)
	} else {
		o.bytesRecv.Add(n)
	}
}

// DialRetry counts one TCP dial retry (attempt is 1-based).
func (o *Observer) DialRetry(attempt int) {
	if o == nil {
		return
	}
	o.dialRetries.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "retry", N: int64(attempt)})
	}
}

// Straggler counts a straggler timeout during a gather of the given kind.
func (o *Observer) Straggler(kind string) {
	if o == nil {
		return
	}
	o.stragglers.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "straggler", Kind: kind})
	}
}

// Fault records one injected fault (drop, delay, duplicate, reorder,
// partition) on the from→to link.
func (o *Observer) Fault(kind string, from, to int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	c, ok := o.faults[kind]
	if !ok {
		c = o.reg.Counter("faults." + kind)
		o.faults[kind] = c
	}
	o.mu.Unlock()
	c.Inc()
	if o.tr != nil {
		f, t := from, to
		o.tr.Emit(Event{Type: "fault", Kind: kind, From: &f, To: &t})
	}
}

// FDShrink records one Frequent Directions shrink over rows buffer rows with
// the given shrink offset δ. Hot path: two atomic adds, a histogram insert,
// no trace event (shrinks are far too frequent to trace individually).
func (o *Observer) FDShrink(rows int, delta float64) {
	if o == nil {
		return
	}
	o.fdShrinks.Inc()
	o.fdDelta.Add(delta)
	o.fdShrinkRows.Observe(float64(rows))
}

// RowsIngested records one server-side ingestion pass of n rows delivered
// by a RowSource; sparse marks passes that took the nnz-proportional sparse
// update path. Two-pass protocols report each pass. Metrics only — no trace
// event (the trace schema is closed, and ingestion totals are per-run
// aggregates, not protocol events).
func (o *Observer) RowsIngested(n int64, sparse bool) {
	if o == nil || n <= 0 {
		return
	}
	o.rowsIngested.Add(n)
	if sparse {
		o.rowsSparse.Add(n)
	}
}

// SVSSampled records one SVS sampling pass keeping kept of candidates rows.
func (o *Observer) SVSSampled(kept, candidates int) {
	if o == nil {
		return
	}
	o.svsSampled.Add(int64(kept))
	o.svsCands.Add(int64(candidates))
}

// PoolFor records one parallel.For dispatch: n items, helpers goroutines
// recruited, under pool width. Hot path: no trace event.
func (o *Observer) PoolFor(n, helpers, width int) {
	if o == nil {
		return
	}
	o.poolCalls.Inc()
	o.poolHelpers.Add(int64(helpers))
	o.poolWidth.Set(float64(width))
}

// MonitoringUpload records one continuous-monitoring server upload of rows
// sketch rows costing words; announce marks the one-time bootstrap mass
// report sent before the first threshold is installed.
func (o *Observer) MonitoringUpload(from, rows int, words float64, announce bool) {
	if o == nil {
		return
	}
	typ := "upload"
	if announce {
		o.monAnnounces.Inc()
		typ = "announce"
	} else {
		o.monUploads.Inc()
	}
	if o.tr != nil {
		f := from
		o.tr.Emit(Event{Type: typ, From: &f, N: int64(rows), Words: words})
	}
}

// MonitoringBroadcast records a coordinator threshold broadcast in the
// continuous-monitoring protocol.
func (o *Observer) MonitoringBroadcast(threshold float64, n int) {
	if o == nil {
		return
	}
	o.monBcasts.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "threshold", Words: threshold, N: int64(n)})
	}
}

// TreeMerge records one tree-node merge at the given level (the node's
// height: aggregators just above the leaves are 1, the root is the plan's
// depth) combining children child summaries, with missing leaves absent
// from the merged subtree. Counted per level under tree.merges.level.<L>.
func (o *Observer) TreeMerge(level, children, missing int) {
	if o == nil {
		return
	}
	o.treeMerges.Inc()
	o.mu.Lock()
	c, ok := o.mergeLevels[level]
	if !ok {
		c = o.reg.Counter(fmt.Sprintf("tree.merges.level.%d", level))
		o.mergeLevels[level] = c
	}
	o.mu.Unlock()
	c.Inc()
	if o.tr != nil {
		e := Event{Type: "merge", Level: level, N: int64(children)}
		if missing > 0 {
			e.Detail = fmt.Sprintf("missing=%d", missing)
		}
		o.tr.Emit(e)
	}
}

// TreeForward records one merged summary forwarded up the tree, from the
// aggregator `from` (at the given level) to its parent `to`.
func (o *Observer) TreeForward(level, from, to int) {
	if o == nil {
		return
	}
	o.treeForwards.Inc()
	if o.tr != nil {
		f, t := from, to
		o.tr.Emit(Event{Type: "forward", Level: level, From: &f, To: &t})
	}
}

// CheckpointSaved records one durable service checkpoint written for
// server `from` holding rows sketch rows at path.
func (o *Observer) CheckpointSaved(from, rows int, path string) {
	if o == nil {
		return
	}
	o.checkpoints.Inc()
	if o.tr != nil {
		f := from
		o.tr.Emit(Event{Type: "checkpoint", From: &f, N: int64(rows), Detail: path})
	}
}

// QueryServed records one service query answered on the HTTP endpoint
// (kind names the endpoint: sketch, coverr, topk, status, window).
func (o *Observer) QueryServed(kind string) {
	if o == nil {
		return
	}
	o.queries.Inc()
	if o.tr != nil {
		o.tr.Emit(Event{Type: "query", Kind: kind})
	}
}

// Note appends a free-form annotation to the trace (no metric).
func (o *Observer) Note(detail string) {
	if o == nil || o.tr == nil {
		return
	}
	o.tr.Emit(Event{Type: "note", Detail: detail})
}
