package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an opt-in debug HTTP server on addr exposing the
// standard pprof endpoints under /debug/pprof/ and a live expvar snapshot
// (including any registry mounted via PublishExpvar) under /debug/vars. It
// uses its own mux, so nothing leaks onto http.DefaultServeMux.
//
// The listener address actually bound (useful with ":0") and a shutdown
// function are returned; the server itself runs until closed.
func ServeDebug(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
