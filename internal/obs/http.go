package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the opt-in debug/query HTTP endpoint: the standard pprof
// handlers under /debug/pprof/ and a live expvar snapshot (including any
// registry mounted via PublishExpvar) under /debug/vars, on a private mux
// so nothing leaks onto http.DefaultServeMux. The service layer mounts its
// query API (/sketch, /coverr, /topk, /status) on the same server via
// Handle, so one -debug address serves both.
//
// Lifecycle: NewDebugServer binds the listener (so Addr is known
// immediately, useful with ":0"), Handle registers extra routes, Start
// begins serving, and Shutdown drains gracefully — in-flight scrapes and
// queries complete within the context's deadline instead of being severed,
// and an asynchronous Serve failure (a dying listener) is surfaced rather
// than dropped.
type DebugServer struct {
	ln       net.Listener
	mux      *http.ServeMux
	srv      *http.Server
	serveErr chan error
	started  bool
}

// NewDebugServer binds addr and prepares the debug mux without serving yet.
func NewDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &DebugServer{
		ln:       ln,
		mux:      mux,
		srv:      &http.Server{Handler: mux},
		serveErr: make(chan error, 1),
	}, nil
}

// Addr returns the bound listener address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Handle registers an extra route on the debug mux. It must be called
// before Start (http.ServeMux registration is not synchronized against
// serving).
func (s *DebugServer) Handle(pattern string, h http.Handler) {
	if s.started {
		panic("obs: DebugServer.Handle after Start")
	}
	s.mux.Handle(pattern, h)
}

// Start begins serving in a background goroutine.
func (s *DebugServer) Start() {
	if s.started {
		return
	}
	s.started = true
	go func() {
		s.serveErr <- s.srv.Serve(s.ln)
	}()
}

// Shutdown gracefully drains the server: it stops accepting, waits (up to
// ctx's deadline) for in-flight requests to finish, then reports any
// asynchronous Serve failure. http.ErrServerClosed — Serve's normal return
// after a shutdown — is not an error.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if !s.started {
		// Never served: just release the listener (Shutdown above closed it).
		return err
	}
	if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		if err == nil {
			err = fmt.Errorf("obs: debug server: %w", serr)
		}
	}
	return err
}

// ServeDebug starts a debug HTTP server on addr and returns the bound
// address plus a close function. The close function shuts down gracefully
// with a 5-second drain — the historical version severed in-flight scrapes
// with srv.Close and dropped the Serve error on the floor. Callers that
// want to mount their own routes or control the drain deadline use
// NewDebugServer directly.
func ServeDebug(addr string) (string, func() error, error) {
	s, err := NewDebugServer(addr)
	if err != nil {
		return "", nil, err
	}
	s.Start()
	closeFn := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return s.Shutdown(ctx)
	}
	return s.Addr(), closeFn, nil
}
