package obs

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func intp(v int) *int { return &v }

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Type: "run_start", Proto: "fd-merge", N: 4})
	tr.Emit(Event{Type: "msg", Kind: "fd-sketch", From: intp(0), To: intp(-1), Bits: 640})
	tr.Emit(Event{Type: "round", Round: 1})
	tr.Emit(Event{Type: "run_end", Proto: "fd-merge", Words: 10})
	if tr.Events() != 4 {
		t.Fatalf("events = %d", tr.Events())
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace does not validate: %v", err)
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
	// from/to must survive JSON even when they are 0 and -1.
	out := buf.String()
	if !strings.Contains(out, `"from":0`) || !strings.Contains(out, `"to":-1`) {
		t.Fatalf("endpoint 0/-1 lost to omitempty:\n%s", out)
	}
}

func TestTracerFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := NewTracerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{Type: "note", Detail: "hello"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTraceFile(path)
	if err != nil || n != 1 {
		t.Fatalf("ValidateTraceFile: n=%d err=%v", n, err)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Type: "note"})
	if tr.Events() != 0 {
		t.Fatal("nil tracer counted events")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{not json}`,
		"unknown type":   `{"t":0,"type":"nope"}`,
		"missing type":   `{"t":0}`,
		"negative t":     `{"t":-1,"type":"note"}`,
		"decreasing t":   `{"t":2,"type":"note"}` + "\n" + `{"t":1,"type":"note"}`,
		"msg no from":    `{"t":0,"type":"msg","kind":"x","to":0}`,
		"msg no kind":    `{"t":0,"type":"msg","from":0,"to":-1}`,
		"msg neg bits":   `{"t":0,"type":"msg","kind":"x","from":0,"to":-1,"bits":-5}`,
		"start no proto": `{"t":0,"type":"run_start"}`,
		"fault no kind":  `{"t":0,"type":"fault"}`,
		"round no num":   `{"t":0,"type":"round"}`,
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// And the empty trace is valid (zero events).
	if n, err := ValidateTrace(strings.NewReader("")); err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v", n, err)
	}
}

func TestEmitForcesMonotonicT(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	for i := 0; i < 100; i++ {
		tr.Emit(Event{Type: "note"})
	}
	tr.Flush()
	if _, err := ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("timestamps not monotone: %v", err)
	}
}
