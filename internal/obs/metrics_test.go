package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1005 {
		t.Fatalf("counter = %d, want %d", got, 8*1005)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	g.Set(10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 10+8*500*0.5 {
		t.Fatalf("gauge = %v, want %v", got, 10+8*500*0.5)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 50, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0.5+1+2+10+50+1000 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot().Histograms["h"]
	// ≤1: {0.5, 1}; ≤10: {2, 10}; ≤100: {50}; overflow: {1000}.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(64, 4, 4)
	want := []float64{64, 256, 1024, 4096}
	for i, w := range want {
		if b[i] != w {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, b[i], w)
		}
	}
	for _, bad := range [][3]float64{{0, 2, 4}, {1, 1, 4}, {1, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v) did not panic", bad)
				}
			}()
			ExpBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("z", []float64{1, 2}) != r.Histogram("z", nil) {
		t.Fatal("histogram handle not stable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsorted histogram bounds did not panic")
			}
		}()
		r.Histogram("bad", []float64{2, 1})
	}()
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("b").Set(1.5)
	r.Histogram("c", []float64{10}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a"] != 7 || s.Gauges["b"] != 1.5 || s.Histograms["c"].Count != 1 {
		t.Fatalf("round trip mismatch: %+v", s)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub").Inc()
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second publish must not panic
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["pub"] != 1 {
		t.Fatalf("published snapshot missing counter: %+v", s)
	}
}
