//go:build !amd64 || purego

package matrix

// No SIMD micro-kernel on this platform: the portable Go loop is the only
// path, so the enable flag is permanently off.
var (
	simdAvailable = false
	simdEnabled   = false
)

func axpy4SIMD(dst, r0, r1, r2, r3 []float64, v0, v1, v2, v3 float64) {
	axpy4Generic(dst, r0, r1, r2, r3, v0, v1, v2, v3)
}

// gramGroup4AVX is only reachable when simdEnabled is true, which never
// holds on this platform.
func gramGroup4AVX(out, rows *float64, d, lo, hi int) {
	panic("matrix: SIMD gram kernel unavailable on this platform")
}
