//go:build amd64 && !purego

package matrix

// cpuid executes CPUID with the given leaf and sub-leaf.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
func xgetbv0() uint32

// axpy4AVX is the AVX+FMA micro-kernel in axpy_amd64.s. Pointers address
// the first element; n is the lane count (must be > 0).
//
//go:noescape
func axpy4AVX(dst, r0, r1, r2, r3 *float64, n int, v *[4]float64)

// gramGroup4AVX folds four contiguous input rows (rows[0:4d], stride d)
// into upper-triangle output rows [lo, hi) of the d×d Gram accumulator
// (axpy_amd64.s); one call covers a whole row group.
//
//go:noescape
func gramGroup4AVX(out, rows *float64, d, lo, hi int)

// simdAvailable is true when the CPU and OS support the AVX+FMA kernel:
// CPUID.1:ECX must advertise FMA, OSXSAVE and AVX, and XCR0 must show the
// OS saves XMM+YMM state on context switch.
var simdAvailable = func() bool {
	_, _, ecx, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&fma == 0 || ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	const xmmYmm = 0x6
	return xgetbv0()&xmmYmm == xmmYmm
}()

var simdEnabled = simdAvailable

func axpy4SIMD(dst, r0, r1, r2, r3 []float64, v0, v1, v2, v3 float64) {
	n := len(dst)
	_ = r0[n-1]
	_ = r1[n-1]
	_ = r2[n-1]
	_ = r3[n-1]
	v := [4]float64{v0, v1, v2, v3}
	axpy4AVX(&dst[0], &r0[0], &r1[0], &r2[0], &r3[0], n, &v)
}
