package matrix

import "math"

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("matrix: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// Norm returns the Euclidean norm of x.
func Norm(x []float64) float64 { return math.Sqrt(Norm2(x)) }

// ScaleVec multiplies x by c in place and returns x.
func ScaleVec(x []float64, c float64) []float64 {
	for i := range x {
		x[i] *= c
	}
	return x
}

// AxpyVec computes y += a·x in place and returns y.
func AxpyVec(y []float64, a float64, x []float64) []float64 {
	if len(x) != len(y) {
		panic("matrix: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
	return y
}

// Normalize scales x to unit Euclidean norm in place and returns its original
// norm. A zero vector is left untouched and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	ScaleVec(x, 1/n)
	return n
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
