package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d, want 3,4", r, c)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	empty := NewFromRows(nil)
	if empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatalf("empty dims = %d×%d", empty.Rows(), empty.Cols())
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
	d := Diag([]float64{2, 3})
	if d.At(0, 0) != 2 || d.At(1, 1) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d)
	}
}

func TestRowSharing(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[1] = 99
	if m.At(0, 1) != 99 {
		t.Fatal("Row must share storage")
	}
}

func TestColSetCol(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col = %v", c)
	}
	c[0] = 77 // Col is a copy; matrix unchanged
	if m.At(0, 1) != 2 {
		t.Fatal("Col must copy")
	}
	m.SetCol(0, []float64{9, 8})
	if m.At(0, 0) != 9 || m.At(1, 0) != 8 {
		t.Fatalf("SetCol failed: %v", m)
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %d×%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 7, 5)
	if !m.T().T().Equal(m) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 6, 4)
	b := randDense(rng, 4, 5)
	got := a.Mul(b)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			for k := 0; k < 4; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(got.At(i, j)-want) > 1e-12 {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 4, 4)
	if !a.Mul(Identity(4)).EqualApprox(a, 1e-15) {
		t.Fatal("A·I != A")
	}
	if !Identity(4).Mul(a).EqualApprox(a, 1e-15) {
		t.Fatal("I·A != A")
	}
}

func TestGramMatchesTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 9, 6)
	g := a.Gram()
	want := a.TMul(a)
	if !g.EqualApprox(want, 1e-10) {
		t.Fatal("Gram != AᵀA via TMul")
	}
	// Symmetry.
	if !g.EqualApprox(g.T(), 0) {
		t.Fatal("Gram not exactly symmetric")
	}
}

func TestTMulAndMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 5, 3)
	b := randDense(rng, 5, 4)
	if !a.TMul(b).EqualApprox(a.T().Mul(b), 1e-10) {
		t.Fatal("TMul != Aᵀ·B")
	}
	c := randDense(rng, 6, 3)
	if !a.MulT(c).EqualApprox(a.Mul(c.T()), 1e-10) {
		t.Fatal("MulT != A·Cᵀ")
	}
}

func TestMulVecTMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 4, 3)
	x := []float64{1, -2, 0.5}
	got := a.MulVec(x)
	for i := 0; i < 4; i++ {
		want := Dot(a.Row(i), x)
		if math.Abs(got[i]-want) > 1e-13 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want)
		}
	}
	y := []float64{1, 2, 3, 4}
	got2 := a.TMulVec(y)
	want2 := a.T().MulVec(y)
	for i := range got2 {
		if math.Abs(got2[i]-want2[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{10, 20}, {30, 40}})
	if got := a.Add(b).At(1, 1); got != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).At(0, 0); got != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2).At(1, 0); got != 6 {
		t.Fatalf("Scale = %v", got)
	}
	// Originals unchanged.
	if a.At(0, 0) != 1 {
		t.Fatal("Add/Scale mutated receiver")
	}
	c := a.Clone()
	c.ScaleInPlace(3)
	if c.At(0, 1) != 6 || a.At(0, 1) != 2 {
		t.Fatal("ScaleInPlace wrong")
	}
	c.ScaleRow(1, 0.5)
	if c.At(1, 0) != 4.5 {
		t.Fatalf("ScaleRow = %v", c.At(1, 0))
	}
}

func TestStack(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	s := a.Stack(b)
	if s.Rows() != 3 || s.At(2, 1) != 6 || s.At(0, 0) != 1 {
		t.Fatalf("Stack wrong: %v", s)
	}
	// Empty matrices are skipped.
	s2 := Stack(&Dense{}, a, nil, b, New(0, 2))
	if !s2.Equal(s) {
		t.Fatal("Stack with empties wrong")
	}
	if Stack().Rows() != 0 {
		t.Fatal("Stack() should be empty")
	}
	// Zero-row parts still fix the column count.
	e := Stack(New(0, 5), New(0, 5))
	if e.Rows() != 0 || e.Cols() != 5 {
		t.Fatalf("Stack of empties = %d×%d, want 0×5", e.Rows(), e.Cols())
	}
}

func TestSliceAndCopyRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	s := m.SliceRows(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 2 || s.At(1, 1) != 3 {
		t.Fatalf("SliceRows wrong: %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must share storage")
	}
	c := m.CopyRows(0, 1)
	c.Set(0, 0, -5)
	if m.At(0, 0) != 1 {
		t.Fatal("CopyRows must copy")
	}
}

func TestAppendRow(t *testing.T) {
	var m Dense
	m2 := m.AppendRow([]float64{1, 2, 3})
	m3 := m2.AppendRow([]float64{4, 5, 6})
	if m3.Rows() != 2 || m3.At(1, 2) != 6 {
		t.Fatalf("AppendRow wrong: %v", m3)
	}
}

func TestNorms(t *testing.T) {
	m := NewFromRows([][]float64{{3, 4}, {0, 0}})
	if m.Frob2() != 25 {
		t.Fatalf("Frob2 = %v", m.Frob2())
	}
	if m.Frob() != 5 {
		t.Fatalf("Frob = %v", m.Frob())
	}
	if m.RowNorm2(0) != 25 || m.RowNorm2(1) != 0 {
		t.Fatal("RowNorm2 wrong")
	}
	sq := NewFromRows([][]float64{{1, 9}, {9, 2}})
	if sq.Trace() != 3 {
		t.Fatalf("Trace = %v", sq.Trace())
	}
	if sq.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", sq.MaxAbs())
	}
}

func TestIsFinite(t *testing.T) {
	m := New(2, 2)
	if !m.IsFinite() {
		t.Fatal("zero matrix should be finite")
	}
	m.Set(0, 1, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 1, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestEqualApprox(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{1.0001, 2}})
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("should differ at 1e-6")
	}
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("should agree at 1e-3")
	}
	c := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if a.EqualApprox(c, 1) {
		t.Fatal("different dims must not be equal")
	}
}

func TestString(t *testing.T) {
	m := randDense(rand.New(rand.NewSource(7)), 10, 10)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestPropMulTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		return a.Mul(b).T().EqualApprox(b.T().Mul(a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖F² == trace(AᵀA).
func TestPropFrobTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := randDense(rng, m, n)
		return math.Abs(a.Frob2()-a.Gram().Trace()) < 1e-9*(1+a.Frob2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: stacking preserves the Gram matrix: [A;B]ᵀ[A;B] == AᵀA + BᵀB.
// This identity underlies the whole distributed-sketch framework.
func TestPropStackGramAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a := randDense(rng, 1+r.Intn(6), d)
		b := randDense(rng, 1+r.Intn(6), d)
		return a.Stack(b).Gram().EqualApprox(a.Gram().Add(b.Gram()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionPanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	cases := []func(){
		func() { a.Mul(b) },
		func() { a.At(2, 0) },
		func() { a.At(0, 3) },
		func() { a.Set(-1, 0, 1) },
		func() { a.MulVec([]float64{1}) },
		func() { a.TMulVec([]float64{1}) },
		func() { a.SetRow(0, []float64{1}) },
		func() { a.SetCol(0, []float64{1}) },
		func() { a.Add(New(3, 3)) },
		func() { a.Sub(New(2, 2)) },
		func() { a.SliceRows(0, 5) },
		func() { a.Trace() },
		func() { a.Stack(New(1, 4)) },
		func() { NewFromData(2, 2, []float64{1}) },
		func() { New(-1, 2) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 25 || Norm(x) != 5 {
		t.Fatal("Norm wrong")
	}
	y := CopyVec(x)
	ScaleVec(y, 2)
	if y[0] != 6 || x[0] != 3 {
		t.Fatal("ScaleVec/CopyVec wrong")
	}
	AxpyVec(y, -1, []float64{6, 8})
	if y[0] != 0 || y[1] != 0 {
		t.Fatal("Axpy wrong")
	}
	z := []float64{0, 3}
	n := Normalize(z)
	if n != 3 || z[1] != 1 {
		t.Fatal("Normalize wrong")
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("Normalize(0) should return 0")
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randDense(rng, 128, 128)
	y := randDense(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func BenchmarkGram1024x64(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	x := randDense(rng, 1024, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Gram()
	}
}
