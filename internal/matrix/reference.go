package matrix

import "fmt"

// Reference kernels: the straightforward serial triple loops that the
// blocked kernels in kernels.go replaced. They are kept (not dead code) as
// the ground truth for correctness cross-checks in tests and as the naive
// leg of the K1 kernel benchmark (internal/bench), which measures the
// blocked kernels' speedup against them on the Gram/shrink hot path.

// RefMul returns m · b computed with the serial ikj reference loop.
func RefMul(m, b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: RefMul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		oi := out.data[i*b.cols : (i+1)*b.cols]
		mi := m.data[i*m.cols : (i+1)*m.cols]
		for k := 0; k < m.cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += a * bv
			}
		}
	}
	return out
}

// RefTMul returns mᵀ · b computed with the serial reference loop.
func RefTMul(m, b *Dense) *Dense {
	if m.rows != b.rows {
		panic(fmt.Sprintf("matrix: RefTMul dimension mismatch (%d×%d)ᵀ · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.cols, b.cols)
	for r := 0; r < m.rows; r++ {
		mr := m.data[r*m.cols : (r+1)*m.cols]
		br := b.data[r*b.cols : (r+1)*b.cols]
		for i, a := range mr {
			if a == 0 {
				continue
			}
			oi := out.data[i*b.cols : (i+1)*b.cols]
			for j, bv := range br {
				oi[j] += a * bv
			}
		}
	}
	return out
}

// RefMulT returns m · bᵀ computed with the serial dot-product reference loop.
func RefMulT(m, b *Dense) *Dense {
	if m.cols != b.cols {
		panic(fmt.Sprintf("matrix: RefMulT dimension mismatch %d×%d · (%d×%d)ᵀ", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			oi[j] = Dot(mi, b.data[j*b.cols:(j+1)*b.cols])
		}
	}
	return out
}

// RefGram returns mᵀ · m computed with the serial upper-triangle reference
// loop (row-ascending accumulation, symmetric fill).
func RefGram(m *Dense) *Dense {
	d := m.cols
	out := New(d, d)
	for r := 0; r < m.rows; r++ {
		row := m.data[r*d : (r+1)*d]
		for i := 0; i < d; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			oi := out.data[i*d:]
			for j := i; j < d; j++ {
				oi[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out.data[j*d+i] = out.data[i*d+j]
		}
	}
	return out
}

// RefMulVec returns m · x computed with serial per-row dot products.
func RefMulVec(m *Dense, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: RefMulVec length %d != %d cols", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
	return out
}

// RefTMulVec returns mᵀ · x computed with the serial row-ascending loop.
func RefTMulVec(m *Dense, x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: RefTMulVec length %d != %d rows", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		mi := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range mi {
			out[j] += xi * v
		}
	}
	return out
}
