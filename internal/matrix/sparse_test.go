package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSparseVector(t *testing.T) {
	v := NewSparseVector(6, []int{4, 1, 4, 2}, []float64{1, 2, 3, 0})
	// index 4 appears twice (1+3=4), index 2 has value 0 and is dropped.
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", v.NNZ())
	}
	d := v.Dense()
	want := []float64{0, 2, 0, 0, 4, 0}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("Dense = %v, want %v", d, want)
		}
	}
	// Sorted indices.
	if v.Indices[0] != 1 || v.Indices[1] != 4 {
		t.Fatalf("indices %v not sorted", v.Indices)
	}
}

func TestNewSparseVectorCancellation(t *testing.T) {
	v := NewSparseVector(3, []int{1, 1}, []float64{2, -2})
	if v.NNZ() != 0 {
		t.Fatalf("canceling duplicates must vanish: %v", v.Values)
	}
}

func TestSparseVectorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSparseVector(3, []int{1}, []float64{1, 2}) },
		func() { NewSparseVector(3, []int{3}, []float64{1}) },
		func() { NewSparseVector(3, []int{-1}, []float64{1}) },
		func() { NewSparseVector(3, []int{0}, []float64{1}).Dot([]float64{1}) },
		func() { NewSparseVector(3, []int{0}, []float64{1}).AddTo([]float64{1}, 1) },
		func() { NewSparse(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSparseFromDenseRoundTrip(t *testing.T) {
	row := []float64{0, 1.5, 0, -2, 1e-12}
	v := SparseFromDense(row, 1e-9)
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
	got := v.Dense()
	if got[1] != 1.5 || got[3] != -2 || got[4] != 0 {
		t.Fatalf("round trip %v", got)
	}
	if math.Abs(v.Norm2()-(1.5*1.5+4)) > 1e-12 {
		t.Fatalf("Norm2 = %v", v.Norm2())
	}
}

func TestSparseDotMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		dense := make([]float64, n)
		for i := range dense {
			if r.Intn(3) == 0 {
				dense[i] = rng.NormFloat64()
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		v := SparseFromDense(dense, 0)
		return math.Abs(v.Dot(x)-Dot(dense, x)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sparseRand(rng *rand.Rand, n, d int, density float64) *Sparse {
	s := NewSparse(d)
	for i := 0; i < n; i++ {
		var idx []int
		var vals []float64
		for j := 0; j < d; j++ {
			if rng.Float64() < density {
				idx = append(idx, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		s.AppendRow(NewSparseVector(d, idx, vals))
	}
	return s
}

func TestSparseMatrixOpsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := sparseRand(rng, 15, 8, 0.3)
	dense := s.ToDense()
	if r, c := s.Dims(); r != 15 || c != 8 {
		t.Fatalf("dims %d×%d", r, c)
	}
	if math.Abs(s.Frob2()-dense.Frob2()) > 1e-10 {
		t.Fatalf("Frob2 %v vs %v", s.Frob2(), dense.Frob2())
	}
	if !s.Gram().EqualApprox(dense.Gram(), 1e-10) {
		t.Fatal("Gram mismatch")
	}
	x := make([]float64, 8)
	y := make([]float64, 15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	mv := s.MulVec(x)
	dv := dense.MulVec(x)
	for i := range mv {
		if math.Abs(mv[i]-dv[i]) > 1e-10 {
			t.Fatal("MulVec mismatch")
		}
	}
	tv := s.TMulVec(y)
	dtv := dense.TMulVec(y)
	for i := range tv {
		if math.Abs(tv[i]-dtv[i]) > 1e-10 {
			t.Fatal("TMulVec mismatch")
		}
	}
}

func TestSparseDensityAndNNZ(t *testing.T) {
	s := NewSparse(4)
	if s.Density() != 0 {
		t.Fatal("empty density")
	}
	s.AppendRow(NewSparseVector(4, []int{0, 2}, []float64{1, 1}))
	s.AppendRow(NewSparseVector(4, nil, nil))
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if s.Density() != 0.25 {
		t.Fatalf("Density = %v", s.Density())
	}
	if s.Row(0).NNZ() != 2 {
		t.Fatal("Row accessor wrong")
	}
}

func TestSparseFromDenseMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDense(rng, 6, 5)
	d.Set(0, 0, 0)
	s := SparseFromDenseMatrix(d, 0)
	if !s.ToDense().EqualApprox(d, 0) {
		t.Fatal("conversion round trip failed")
	}
}

// TestSparseAppendRowNeverAliases is the regression test for the
// Sparse.AppendRow aliasing hazard (the sparse counterpart of the dense
// AppendRow fix): the stored row must not share Indices/Values storage with
// the caller's vector, or a caller reusing its buffers silently corrupts the
// matrix.
func TestSparseAppendRowNeverAliases(t *testing.T) {
	v := NewSparseVector(4, []int{1, 3}, []float64{2, 4})
	s := NewSparse(4)
	s.AppendRow(v)
	v.Values[0] = -99
	v.Indices[0] = 0
	row := s.Row(0)
	if row.Values[0] != 2 || row.Indices[0] != 1 {
		t.Fatalf("stored row aliases the appended vector: %+v", row)
	}
	// Mutating the stored row must not reach back into the caller's vector.
	row.Values[1] = 77
	if v.Values[1] != 4 {
		t.Fatal("caller's vector aliases the stored row")
	}
	// Empty rows append cleanly.
	s.AppendRow(NewSparseVector(4, nil, nil))
	if s.Row(1).NNZ() != 0 {
		t.Fatal("empty row corrupted")
	}
}
