package matrix

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// Kernel micro-benchmarks at the BENCH table-1 hot-path shape (n=8192,
// d=64, pool width 1): blocked kernels vs the serial reference loops they
// replaced. The Ref legs are what shipped before the blocked rewrite, so
// the pair gives the kernel speedup directly. BenchmarkGram reports
// allocations — CI fails the build if the steady path allocates beyond
// the output (see .github/workflows/ci.yml).

const (
	benchRows = 8192
	benchCols = 64
)

func benchMatrix(b *testing.B, rows, cols int, seed int64) *Dense {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func benchVec(b *testing.B, n int, seed int64) []float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func serially(b *testing.B, f func()) {
	b.Helper()
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	b.ResetTimer()
	f()
}

func BenchmarkGram(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	b.ReportAllocs()
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.Gram()
		}
	})
}

func BenchmarkGramRef(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	b.ReportAllocs()
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = RefGram(m)
		}
	})
}

func BenchmarkTMul(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchMatrix(b, benchRows, benchCols, 2)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.TMul(x)
		}
	})
}

func BenchmarkTMulRef(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchMatrix(b, benchRows, benchCols, 2)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = RefTMul(m, x)
		}
	})
}

func BenchmarkMulSquare(b *testing.B) {
	m := benchMatrix(b, 512, 512, 1)
	x := benchMatrix(b, 512, 512, 2)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.Mul(x)
		}
	})
}

func BenchmarkMulSquareRef(b *testing.B) {
	m := benchMatrix(b, 512, 512, 1)
	x := benchMatrix(b, 512, 512, 2)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = RefMul(m, x)
		}
	})
}

func BenchmarkMulT(b *testing.B) {
	m := benchMatrix(b, 1024, benchCols, 1)
	x := benchMatrix(b, 1024, benchCols, 2)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.MulT(x)
		}
	})
}

func BenchmarkMulVec(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchVec(b, benchCols, 3)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.MulVec(x)
		}
	})
}

func BenchmarkMulVecRef(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchVec(b, benchCols, 3)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = RefMulVec(m, x)
		}
	})
}

func BenchmarkTMulVec(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchVec(b, benchRows, 4)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = m.TMulVec(x)
		}
	})
}

func BenchmarkTMulVecRef(b *testing.B) {
	m := benchMatrix(b, benchRows, benchCols, 1)
	x := benchVec(b, benchRows, 4)
	serially(b, func() {
		for i := 0; i < b.N; i++ {
			_ = RefTMulVec(m, x)
		}
	})
}
