package matrix

// axpy4 is the shared micro-kernel of the blocked matrix kernels
// (kernels.go): dst[j] += v0·r0[j] + v1·r1[j] + v2·r2[j] + v3·r3[j] for
// every j, accumulated per entry as one fixed chain in row order r0→r3.
// All slices must have equal length.
//
// On amd64 with AVX and FMA (detected once at init) this dispatches to a
// hand-written 4-lane fused-multiply-add kernel; everywhere else it runs
// the portable Go loop below. Both paths use the same per-entry chain
// order, so results are deterministic for a given binary and machine and
// identical at every worker-pool width; the fused path differs from the
// portable one only by the intermediate rounding FMA removes (covered by
// the kernel tolerance tests).
func axpy4(dst, r0, r1, r2, r3 []float64, v0, v1, v2, v3 float64) {
	if len(dst) == 0 {
		return
	}
	if simdEnabled {
		axpy4SIMD(dst, r0, r1, r2, r3, v0, v1, v2, v3)
		return
	}
	axpy4Generic(dst, r0, r1, r2, r3, v0, v1, v2, v3)
}

// axpy4Generic is the portable micro-kernel. Exactly one multiply and one
// add per product, chained r0→r3 per entry.
func axpy4Generic(dst, r0, r1, r2, r3 []float64, v0, v1, v2, v3 float64) {
	if len(dst) == 0 {
		return
	}
	_ = r0[len(dst)-1]
	_ = r1[len(dst)-1]
	_ = r2[len(dst)-1]
	_ = r3[len(dst)-1]
	for j := range dst {
		t := dst[j]
		t += v0 * r0[j]
		t += v1 * r1[j]
		t += v2 * r2[j]
		t += v3 * r3[j]
		dst[j] = t
	}
}

// KernelISA reports which instruction set the dense micro-kernels use:
// "avx-fma" when the hand-written SIMD path is active, "generic" for the
// portable Go path. Benchmarks record it so baselines are comparable.
func KernelISA() string {
	if simdEnabled {
		return "avx-fma"
	}
	return "generic"
}

// setSIMD force-enables or disables the SIMD micro-kernel (no-op on
// platforms without one). Tests use it to cross-check both paths; it is
// not safe to flip concurrently with running kernels.
func setSIMD(on bool) (prev bool) {
	prev = simdEnabled
	simdEnabled = on && simdAvailable
	return prev
}
