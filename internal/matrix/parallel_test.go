package matrix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// atWidth evaluates fn under a temporary pool width and restores the old one.
func atWidth(w int, fn func() *Dense) *Dense {
	prev := parallel.Workers()
	parallel.SetWorkers(w)
	defer parallel.SetWorkers(prev)
	return fn()
}

func bitIdentical(a, b *Dense) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

func maxRelDiff(a, b *Dense) float64 {
	ad, bd := a.Data(), b.Data()
	worst := 0.0
	for i := range ad {
		diff := math.Abs(ad[i] - bd[i])
		scale := math.Max(math.Abs(ad[i]), math.Abs(bd[i]))
		if scale == 0 {
			if diff != 0 {
				return math.Inf(1)
			}
			continue
		}
		if r := diff / scale; r > worst {
			worst = r
		}
	}
	return worst
}

// Mul, MulT, MulVec, TMulVec and Gram parallelize over disjoint outputs
// without changing any per-entry accumulation order, so every pool width
// must reproduce the serial result bit for bit.
func TestParallelKernelsBitIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 67, 41)
	b := randDense(rng, 41, 29)
	x := make([]float64, 41)
	y := make([]float64, 67)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.NormFloat64()
	}

	serialMul := atWidth(1, func() *Dense { return a.Mul(b) })
	serialMulT := atWidth(1, func() *Dense { return a.MulT(a) })
	serialGram := atWidth(1, func() *Dense { return a.Gram() })
	var serialMulVec, serialTMulVec []float64
	atWidth(1, func() *Dense {
		serialMulVec = a.MulVec(x)
		serialTMulVec = a.TMulVec(y)
		return nil
	})

	for _, w := range []int{2, 4, 8} {
		if got := atWidth(w, func() *Dense { return a.Mul(b) }); !bitIdentical(got, serialMul) {
			t.Errorf("w=%d: Mul differs from serial", w)
		}
		if got := atWidth(w, func() *Dense { return a.MulT(a) }); !bitIdentical(got, serialMulT) {
			t.Errorf("w=%d: MulT differs from serial", w)
		}
		if got := atWidth(w, func() *Dense { return a.Gram() }); !bitIdentical(got, serialGram) {
			t.Errorf("w=%d: Gram differs from serial", w)
		}
		atWidth(w, func() *Dense {
			mv := a.MulVec(x)
			tv := a.TMulVec(y)
			for i := range mv {
				if math.Float64bits(mv[i]) != math.Float64bits(serialMulVec[i]) {
					t.Errorf("w=%d: MulVec[%d] differs from serial", w, i)
					break
				}
			}
			for i := range tv {
				if math.Float64bits(tv[i]) != math.Float64bits(serialTMulVec[i]) {
					t.Errorf("w=%d: TMulVec[%d] differs from serial", w, i)
					break
				}
			}
			return nil
		})
	}
}

// TMul accumulates into per-chunk partials merged in chunk order, so its
// rounding may differ from the serial single-accumulator pass — but only
// at the level of floating-point reassociation.
func TestParallelTMulMatchesSerialWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 200, 23)
	b := randDense(rng, 200, 17)
	serial := atWidth(1, func() *Dense { return a.TMul(b) })
	for _, w := range []int{2, 4, 8} {
		got := atWidth(w, func() *Dense { return a.TMul(b) })
		if rel := maxRelDiff(got, serial); rel > 1e-12 {
			t.Errorf("w=%d: TMul rel diff %g exceeds reassociation tolerance", w, rel)
		}
	}
}

// A fixed pool width must also be internally deterministic: the chunk
// decomposition depends only on (n, grain, width), never on scheduling.
func TestParallelTMulDeterministicAtFixedWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randDense(rng, 300, 19)
	b := randDense(rng, 300, 13)
	first := atWidth(4, func() *Dense { return a.TMul(b) })
	for trial := 0; trial < 5; trial++ {
		if got := atWidth(4, func() *Dense { return a.TMul(b) }); !bitIdentical(got, first) {
			t.Fatalf("trial %d: TMul not deterministic at fixed width", trial)
		}
	}
}
