// Package matrix provides a from-scratch dense matrix type and the basic
// linear-algebra operations needed by the sketching algorithms in this
// repository: multiplication (including Gram products), row stacking,
// slicing, scaling, and norms.
//
// Matrices are stored row-major, matching the paper's row-partitioned data
// model: a server's input is a set of rows, a sketch is a (much shorter) set
// of rows, and communication cost is counted in matrix entries ("words").
//
// Dimension mismatches are programming errors and panic, following the
// convention of the standard library (e.g. slice bounds). Numerical failures
// (non-convergence) are reported as errors by the linalg package instead.
package matrix

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/parallel"
)

// Dense is a dense row-major matrix.
//
// The zero value is an empty 0×0 matrix ready to use with Stack / AppendRow.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (row-major, length r*c) without copying.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d != %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Reuse repoints m to an r×c matrix over data (row-major, length r·c)
// without allocating a new header. It exists for pooling codecs — comm's
// zero-alloc Decode recycles Dense headers together with their backing
// slices — and ordinary callers should use New or NewFromData instead.
// The previous backing slice is abandoned.
func (m *Dense) Reuse(r, c int, data []float64) {
	if r < 0 || c < 0 || len(data) != r*c {
		panic(fmt.Sprintf("matrix: Reuse %d×%d over %d values", r, c, len(data)))
	}
	m.rows, m.cols, m.data = r, c, data
}

// NewFromRows builds a matrix by copying the given rows, which must all have
// equal length. An empty input yields a 0×0 matrix.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return &Dense{}
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square diagonal matrix whose diagonal is v.
func Diag(v []float64) *Dense {
	n := len(v)
	m := New(n, n)
	for i, x := range v {
		m.data[i*n+i] = x
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the (i,j) entry.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the (i,j) entry.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's backing storage.
// Mutating the slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d != %d cols", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol copies v into column j.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("matrix: SetCol length %d != %d rows", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Data returns the backing row-major slice (not a copy).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols:]
		for j := 0; j < m.cols; j++ {
			t.data[j*m.rows+i] = mi[j]
		}
	}
	return t
}

// SliceRows returns the submatrix of rows [from, to) sharing backing storage
// with m. Mutations are visible in both.
func (m *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to < from || to > m.rows {
		panic(fmt.Sprintf("matrix: SliceRows [%d,%d) out of range %d", from, to, m.rows))
	}
	return &Dense{rows: to - from, cols: m.cols, data: m.data[from*m.cols : to*m.cols]}
}

// CopyRows returns a deep copy of rows [from, to).
func (m *Dense) CopyRows(from, to int) *Dense {
	return m.SliceRows(from, to).Clone()
}

// Stack returns the vertical concatenation [A; B; ...] of m and the given
// matrices. Matrices with zero rows contribute no rows but still fix the
// column count (so stacking all-empty 0×d parts yields 0×d); all matrices
// with a positive column count must agree on it (a 0×0 empty matrix is
// compatible with anything).
func (m *Dense) Stack(others ...*Dense) *Dense {
	all := append([]*Dense{m}, others...)
	cols, rows := 0, 0
	for _, a := range all {
		if a == nil || a.cols == 0 {
			continue
		}
		if cols == 0 {
			cols = a.cols
		} else if a.cols != cols {
			panic(fmt.Sprintf("matrix: Stack column mismatch %d vs %d", cols, a.cols))
		}
		rows += a.rows
	}
	out := New(rows, cols)
	at := 0
	for _, a := range all {
		if a == nil || a.rows == 0 {
			continue
		}
		copy(out.data[at:], a.data[:a.rows*a.cols])
		at += a.rows * a.cols
	}
	return out
}

// Stack returns the vertical concatenation of the given matrices
// (package-level convenience accepting an empty list).
func Stack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return &Dense{}
	}
	return ms[0].Stack(ms[1:]...)
}

// AppendRow returns m extended by one row. The result NEVER shares backing
// storage with m or v: it is always a fresh allocation, so mutating either
// matrix afterwards cannot corrupt the other. (An earlier implementation
// used a capacity-limited append, which still aliased m's array whenever
// spare capacity had been pre-grown — e.g. on a SliceRows view of a larger
// matrix.) m itself is unchanged; always use the return value. An empty
// matrix adopts the row's length.
func (m *Dense) AppendRow(v []float64) *Dense {
	if m.rows == 0 && m.cols == 0 {
		out := New(1, len(v))
		copy(out.data, v)
		return out
	}
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: AppendRow length %d != %d cols", len(v), m.cols))
	}
	data := make([]float64, (m.rows+1)*m.cols)
	copy(data, m.data[:m.rows*m.cols])
	copy(data[m.rows*m.cols:], v)
	return &Dense{rows: m.rows + 1, cols: m.cols, data: data}
}

// Mul returns the product m · b, computed with the cache-blocked axpy4
// kernel in kernels.go (b swept in fixed row panels, four rows folded per
// pass). Rows of the output are computed in parallel on the shared worker
// pool; every output entry is one ascending-k multiply-add chain with
// fixed group boundaries regardless of sharding, so the result is
// bit-identical to a serial run.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	parallel.For(m.rows, parallel.Grain(2*m.cols*b.cols), func(lo, hi int) {
		mulRange(out, m, b, lo, hi)
	})
	return out
}

// MulVec returns the matrix-vector product m · x, four rows per pass over
// the shared x (kernels.go). Each entry keeps Dot's ascending-k chain —
// bit-identical to serial at every pool width.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec length %d != %d cols", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	parallel.For(m.rows, parallel.Grain(2*m.cols), func(lo, hi int) {
		mulVecRange(out, x, m, lo, hi)
	})
	return out
}

// TMulVec returns mᵀ · x. The output is split into column bands, each
// accumulated over rows in ascending order (four rows per load-store pass,
// kernels.go) — bit-identical to serial at every pool width.
func (m *Dense) TMulVec(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: TMulVec length %d != %d rows", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	parallel.For(m.cols, parallel.Grain(2*m.rows), func(lo, hi int) {
		tmulVecRange(out, x, m, lo, hi)
	})
	return out
}

// Gram returns mᵀ · m (the d×d covariance Gram matrix), exploiting symmetry.
// Rows of the upper triangle are computed in parallel, folding groups of
// four input rows per pass with the axpy4 micro-kernel (kernels.go). The
// group schedule starts at row 0 regardless of sharding — every entry is
// one fixed ascending-row chain at every pool width, so results are
// bit-identical across widths (grouping only changes rounding vs the
// pre-blocking row-at-a-time chain; cross-kernel tests use tolerances).
func (m *Dense) Gram() *Dense {
	d := m.cols
	out := New(d, d)
	parallel.For(d, parallel.Grain(m.rows*(d+1)), func(lo, hi int) {
		gramRange(out, m, lo, hi)
	})
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out.data[j*d+i] = out.data[i*d+j]
		}
	}
	return out
}

// TMul returns mᵀ · b. Row blocks accumulate into private partial products
// (groups of four rows folded per pass by axpy4, kernels.go) merged in
// block order: deterministic for a fixed pool width, but the chunked
// summation may differ from a serial run by rounding (documented
// 1e-12-grade tolerance).
func (m *Dense) TMul(b *Dense) *Dense {
	if m.rows != b.rows {
		panic(fmt.Sprintf("matrix: TMul dimension mismatch (%d×%d)ᵀ · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	accumulate := func(acc *Dense, lo, hi int) *Dense {
		if acc == nil {
			acc = New(m.cols, b.cols)
		}
		tmulRange(acc, m, b, lo, hi)
		return acc
	}
	out := parallel.Reduce(m.rows, parallel.Grain(2*m.cols*b.cols), (*Dense)(nil), accumulate,
		func(a, b *Dense) *Dense {
			if a == nil {
				return b
			}
			if b != nil {
				for i, v := range b.data {
					a.data[i] += v
				}
			}
			return a
		})
	if out == nil {
		out = New(m.cols, b.cols)
	}
	return out
}

// MulT returns m · bᵀ: dot products of row pairs, four b-rows per pass
// (kernels.go; dot-shaped, so it stays untiled — see mulTRange). Output
// rows are computed in parallel; every entry is one ascending-k chain —
// bit-identical to serial at every pool width.
func (m *Dense) MulT(b *Dense) *Dense {
	if m.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulT dimension mismatch %d×%d · (%d×%d)ᵀ", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.rows)
	parallel.For(m.rows, parallel.Grain(2*m.cols*b.rows), func(lo, hi int) {
		mulTRange(out, m, b, lo, hi)
	})
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameDims(b, "Add")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.sameDims(b, "Sub")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

func (m *Dense) sameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s dimension mismatch %d×%d vs %d×%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Scale returns c · m as a new matrix.
func (m *Dense) Scale(c float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

// ScaleInPlace multiplies every entry by c.
func (m *Dense) ScaleInPlace(c float64) {
	for i := range m.data {
		m.data[i] *= c
	}
}

// ScaleRow multiplies row i by c in place.
func (m *Dense) ScaleRow(i int, c float64) {
	r := m.Row(i)
	for j := range r {
		r[j] *= c
	}
}

// Frob2 returns the squared Frobenius norm ‖m‖F² = Σ m_ij².
func (m *Dense) Frob2() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// Frob returns the Frobenius norm ‖m‖F.
func (m *Dense) Frob() float64 { return math.Sqrt(m.Frob2()) }

// RowNorm2 returns the squared Euclidean norm of row i.
func (m *Dense) RowNorm2(i int) float64 {
	s := 0.0
	for _, v := range m.Row(i) {
		s += v * v
	}
	return s
}

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Trace of non-square %d×%d", m.rows, m.cols))
	}
	s := 0.0
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// MaxAbs returns max |m_ij| (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and b have identical dimensions and entries.
func (m *Dense) Equal(b *Dense) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and b agree entrywise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry is finite (no NaN/Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging (rows truncated past 8×8).
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %d×%d\n", m.rows, m.cols)
	rmax, cmax := m.rows, m.cols
	if rmax > 8 {
		rmax = 8
	}
	if cmax > 8 {
		cmax = 8
	}
	for i := 0; i < rmax; i++ {
		b.WriteString("[")
		for j := 0; j < cmax; j++ {
			fmt.Fprintf(&b, "% .4g", m.At(i, j))
			if j < cmax-1 {
				b.WriteString(" ")
			}
		}
		if cmax < m.cols {
			b.WriteString(" …")
		}
		b.WriteString("]\n")
	}
	if rmax < m.rows {
		b.WriteString("…\n")
	}
	return b.String()
}
