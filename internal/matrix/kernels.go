package matrix

// Cache-blocked dense kernels.
//
// The axpy-shaped kernels (Mul, TMul, Gram, TMulVec) are built on one
// micro-kernel, axpy4 (axpy.go): four input rows are folded into a
// destination row per pass, so the destination is loaded and stored once
// per four multiply-adds and the four row streams stay cache-resident.
// On amd64 the micro-kernel is 4-lane AVX+FMA assembly; elsewhere it is a
// portable Go loop with the same per-entry chain order.
//
// Two invariants hold on every path (see DESIGN.md "Kernel layout and
// precision modes"):
//
//   - Group and panel boundaries depend only on the matrix dimensions —
//     never on the worker-pool width or the parallel shard a row lands
//     in — except inside TMul's row chunks, which already document a
//     summation tolerance. Each output entry is accumulated by one fixed
//     chain (ascending groups of four, rows in order within a group), so
//     the width-invariance promises of dense.go are preserved: blocking
//     changes which entries are computed together, not how any single
//     entry is summed.
//   - No kernel allocates beyond its output: rows are read in place (no
//     packing buffers), which keeps the Gram steady path alloc-flat (see
//     BenchmarkGram and the CI alloc smoke).
//
// MulT and MulVec are dot-shaped (both operands stream contiguously along
// the summation dimension), where folding rows buys nothing: they keep
// per-row dot loops, unrolled four output rows per pass to share streams.

const (
	// groupRows is the micro-kernel depth: axpy4 folds this many input
	// rows per destination pass.
	groupRows = 4
	// panelBytes bounds the cache-resident row panel of Mul (sized well
	// inside a typical 256 KiB–1 MiB L2).
	panelBytes = 1 << 17
)

// panelRows returns the row-panel height for inputs whose rows hold
// rowFloats float64s, rounded to a multiple of the group depth. It
// depends only on the matrix shape, never on the worker count, so panel
// sums are identical at every pool width.
func panelRows(rowFloats int) int {
	if rowFloats < 1 {
		rowFloats = 1
	}
	rows := (panelBytes / (8 * rowFloats)) &^ (groupRows - 1)
	if rows < groupRows {
		rows = groupRows
	}
	return rows
}

// axpy1 is the single-row tail of axpy4: dst[j] += v·r[j].
func axpy1(dst, r []float64, v float64) {
	for j, x := range r {
		dst[j] += v * x
	}
}

// mulRange computes rows [lo, hi) of out = m · b. b is swept in row
// panels (fixed schedule starting at row 0) kept cache-resident across
// the destination rows; within a panel, groups of four b-rows are folded
// into the output row by axpy4. Every output entry is one ascending-k
// chain with the same fixed group boundaries at any [lo, hi) sharding.
func mulRange(out, m, b *Dense, lo, hi int) {
	kk, n := m.cols, b.cols
	md, bd, od := m.data, b.data, out.data
	kb := panelRows(n)
	for p0 := 0; p0 < kk; p0 += kb {
		p1 := p0 + kb
		if p1 > kk {
			p1 = kk
		}
		for i := lo; i < hi; i++ {
			mi := md[i*kk : (i+1)*kk]
			oi := od[i*n : (i+1)*n]
			k := p0
			for ; k+groupRows <= p1; k += groupRows {
				axpy4(oi,
					bd[k*n:(k+1)*n], bd[(k+1)*n:(k+2)*n],
					bd[(k+2)*n:(k+3)*n], bd[(k+3)*n:(k+4)*n],
					mi[k], mi[k+1], mi[k+2], mi[k+3])
			}
			for ; k < p1; k++ {
				axpy1(oi, bd[k*n:(k+1)*n], mi[k])
			}
		}
	}
}

// tmulRange accumulates rows [lo, hi) of m and b into acc = mᵀ·b: groups
// of four input rows (relative to lo) are folded into each of acc's rows
// by axpy4, with the four b-rows cache-resident across the sweep. Group
// boundaries follow the row chunking, so different pool widths differ
// only by summation-order rounding — exactly the tolerance TMul has
// always documented.
func tmulRange(acc, m, b *Dense, lo, hi int) {
	mc, bc := m.cols, b.cols
	md, bd, od := m.data, b.data, acc.data
	r := lo
	for ; r+groupRows <= hi; r += groupRows {
		b0, b1, b2, b3 := r*mc, (r+1)*mc, (r+2)*mc, (r+3)*mc
		r0 := bd[r*bc : (r+1)*bc]
		r1 := bd[(r+1)*bc : (r+2)*bc]
		r2 := bd[(r+2)*bc : (r+3)*bc]
		r3 := bd[(r+3)*bc : (r+4)*bc]
		for i := 0; i < mc; i++ {
			axpy4(od[i*bc:(i+1)*bc], r0, r1, r2, r3,
				md[b0+i], md[b1+i], md[b2+i], md[b3+i])
		}
	}
	for ; r < hi; r++ {
		mr := md[r*mc : (r+1)*mc]
		br := bd[r*bc : (r+1)*bc]
		for i, v := range mr {
			if v == 0 {
				continue
			}
			axpy1(od[i*bc:(i+1)*bc], br, v)
		}
	}
}

// gramRange accumulates out[i][i:] += Σ_r m[r][i]·m[r][i:] for the
// upper-triangle output rows i in [lo, hi), folding groups of four input
// rows per pass. Groups start at row 0 regardless of sharding, so every
// entry keeps one fixed ascending-row chain at any pool width.
func gramRange(out, m *Dense, lo, hi int) {
	d := m.cols
	md, od := m.data, out.data
	n := m.rows
	if d == 0 || lo >= hi {
		return
	}
	r := 0
	if simdEnabled {
		for ; r+groupRows <= n; r += groupRows {
			gramGroup4AVX(&od[0], &md[r*d], d, lo, hi)
		}
	} else {
		for ; r+groupRows <= n; r += groupRows {
			b0, b1, b2, b3 := r*d, (r+1)*d, (r+2)*d, (r+3)*d
			for i := lo; i < hi; i++ {
				axpy4Generic(od[i*d+i:(i+1)*d],
					md[b0+i:b0+d], md[b1+i:b1+d], md[b2+i:b2+d], md[b3+i:b3+d],
					md[b0+i], md[b1+i], md[b2+i], md[b3+i])
			}
		}
	}
	for ; r < n; r++ {
		base := r * d
		for i := lo; i < hi; i++ {
			axpy1(od[i*d+i:(i+1)*d], md[base+i:base+d], md[base+i])
		}
	}
}

// mulTRange computes rows [lo, hi) of out = m · bᵀ. Both operands stream
// contiguously along the summation dimension, so this stays a dot-product
// loop, unrolled four b-rows per pass to share m's row stream (register
// tiling further was measured slower: 16 scalar accumulators spill on
// amd64). Every entry is one ascending-k chain on every path.
func mulTRange(out, m, b *Dense, lo, hi int) {
	kk, n := m.cols, b.rows
	md, bd, od := m.data, b.data, out.data
	for i := lo; i < hi; i++ {
		mi := md[i*kk : (i+1)*kk]
		oi := od[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bd[j*kk : (j+1)*kk]
			b1 := bd[(j+1)*kk : (j+2)*kk]
			b2 := bd[(j+2)*kk : (j+3)*kk]
			b3 := bd[(j+3)*kk : (j+4)*kk]
			var a0, a1, a2, a3 float64
			for k, v := range mi {
				a0 += v * b0[k]
				a1 += v * b1[k]
				a2 += v * b2[k]
				a3 += v * b3[k]
			}
			oi[j], oi[j+1], oi[j+2], oi[j+3] = a0, a1, a2, a3
		}
		for ; j < n; j++ {
			oi[j] = Dot(mi, bd[j*kk:(j+1)*kk])
		}
	}
}

// mulVecRange computes out[lo:hi] of m · x, four rows per pass sharing
// the streamed x (dot-shaped, like MulT). Each entry is the same
// ascending-k chain Dot produces.
func mulVecRange(out, x []float64, m *Dense, lo, hi int) {
	kk := m.cols
	md := m.data
	i := lo
	for ; i+4 <= hi; i += 4 {
		m0 := md[i*kk : (i+1)*kk]
		m1 := md[(i+1)*kk : (i+2)*kk]
		m2 := md[(i+2)*kk : (i+3)*kk]
		m3 := md[(i+3)*kk : (i+4)*kk]
		var a0, a1, a2, a3 float64
		for k, v := range x {
			a0 += m0[k] * v
			a1 += m1[k] * v
			a2 += m2[k] * v
			a3 += m3[k] * v
		}
		out[i], out[i+1], out[i+2], out[i+3] = a0, a1, a2, a3
	}
	for ; i < hi; i++ {
		out[i] = Dot(md[i*kk:(i+1)*kk], x)
	}
}

// tmulVecRange accumulates the column band [lo, hi) of mᵀ · x, folding
// groups of four input rows into the band with axpy4. Groups start at
// row 0 regardless of sharding — one fixed ascending-row chain per entry
// at any pool width.
func tmulVecRange(out, x []float64, m *Dense, lo, hi int) {
	d := m.cols
	md := m.data
	n := m.rows
	band := out[lo:hi]
	r := 0
	for ; r+groupRows <= n; r += groupRows {
		axpy4(band,
			md[r*d+lo:r*d+hi], md[(r+1)*d+lo:(r+1)*d+hi],
			md[(r+2)*d+lo:(r+2)*d+hi], md[(r+3)*d+lo:(r+3)*d+hi],
			x[r], x[r+1], x[r+2], x[r+3])
	}
	for ; r < n; r++ {
		axpy1(band, md[r*d+lo:r*d+hi], x[r])
	}
}
