package matrix

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a sparse row: sorted unique indices with their values.
// It is the input type for the nnz-proportional update paths (the setting
// of Ghashami–Liberty–Phillips, KDD'16, discussed in §2 of the paper).
type SparseVector struct {
	Len     int
	Indices []int
	Values  []float64
}

// NewSparseVector builds a sparse vector of logical length n from parallel
// index/value slices (copied, sorted, zero values dropped, duplicate
// indices summed).
func NewSparseVector(n int, indices []int, values []float64) *SparseVector {
	if len(indices) != len(values) {
		panic(fmt.Sprintf("matrix: sparse vector with %d indices, %d values", len(indices), len(values)))
	}
	type iv struct {
		i int
		v float64
	}
	items := make([]iv, 0, len(indices))
	for j, i := range indices {
		if i < 0 || i >= n {
			panic(fmt.Sprintf("matrix: sparse index %d out of range %d", i, n))
		}
		if values[j] != 0 {
			items = append(items, iv{i, values[j]})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].i < items[b].i })
	out := &SparseVector{Len: n}
	for _, it := range items {
		if l := len(out.Indices); l > 0 && out.Indices[l-1] == it.i {
			out.Values[l-1] += it.v
			continue
		}
		out.Indices = append(out.Indices, it.i)
		out.Values = append(out.Values, it.v)
	}
	// Summing duplicates may have produced zeros; drop them.
	w := 0
	for j := range out.Indices {
		if out.Values[j] != 0 {
			out.Indices[w], out.Values[w] = out.Indices[j], out.Values[j]
			w++
		}
	}
	out.Indices, out.Values = out.Indices[:w], out.Values[:w]
	return out
}

// SparseFromDense converts a dense row, keeping entries with |v| > tol.
func SparseFromDense(row []float64, tol float64) *SparseVector {
	out := &SparseVector{Len: len(row)}
	for i, v := range row {
		if math.Abs(v) > tol {
			out.Indices = append(out.Indices, i)
			out.Values = append(out.Values, v)
		}
	}
	return out
}

// NNZ returns the number of stored nonzeros.
func (v *SparseVector) NNZ() int { return len(v.Indices) }

// Norm2 returns the squared Euclidean norm.
func (v *SparseVector) Norm2() float64 {
	s := 0.0
	for _, x := range v.Values {
		s += x * x
	}
	return s
}

// Dot returns the inner product with a dense vector of matching length.
func (v *SparseVector) Dot(dense []float64) float64 {
	if len(dense) != v.Len {
		panic(fmt.Sprintf("matrix: sparse Dot length %d vs %d", v.Len, len(dense)))
	}
	s := 0.0
	for j, i := range v.Indices {
		s += v.Values[j] * dense[i]
	}
	return s
}

// AddTo scatters a·v into the dense target (length Len).
func (v *SparseVector) AddTo(dense []float64, a float64) {
	if len(dense) != v.Len {
		panic(fmt.Sprintf("matrix: sparse AddTo length %d vs %d", v.Len, len(dense)))
	}
	for j, i := range v.Indices {
		dense[i] += a * v.Values[j]
	}
}

// Dense materializes the vector.
func (v *SparseVector) Dense() []float64 {
	out := make([]float64, v.Len)
	v.AddTo(out, 1)
	return out
}

// Sparse is a sparse row-major matrix (a slice of sparse rows sharing the
// column dimension).
type Sparse struct {
	cols int
	rows []*SparseVector
}

// NewSparse creates an empty sparse matrix with c columns.
func NewSparse(c int) *Sparse {
	if c <= 0 {
		panic(fmt.Sprintf("matrix: NewSparse with c=%d", c))
	}
	return &Sparse{cols: c}
}

// SparseFromDenseMatrix converts m, keeping entries with |v| > tol.
func SparseFromDenseMatrix(m *Dense, tol float64) *Sparse {
	r, c := m.Dims()
	out := NewSparse(c)
	for i := 0; i < r; i++ {
		out.AppendRow(SparseFromDense(m.Row(i), tol))
	}
	return out
}

// AppendRow adds one sparse row. The stored row NEVER shares storage with
// the argument — the same copy-on-append contract as Dense.AppendRow, so a
// caller mutating (or reusing) its vector after the append can never corrupt
// the matrix.
func (s *Sparse) AppendRow(v *SparseVector) {
	if v.Len != s.cols {
		panic(fmt.Sprintf("matrix: sparse row length %d != cols %d", v.Len, s.cols))
	}
	cp := &SparseVector{Len: v.Len}
	if len(v.Indices) > 0 {
		cp.Indices = append([]int(nil), v.Indices...)
		cp.Values = append([]float64(nil), v.Values...)
	}
	s.rows = append(s.rows, cp)
}

// Dims returns rows and columns.
func (s *Sparse) Dims() (int, int) { return len(s.rows), s.cols }

// Row returns the i-th sparse row.
func (s *Sparse) Row(i int) *SparseVector { return s.rows[i] }

// NNZ returns the total stored nonzeros.
func (s *Sparse) NNZ() int {
	n := 0
	for _, r := range s.rows {
		n += r.NNZ()
	}
	return n
}

// Frob2 returns the squared Frobenius norm.
func (s *Sparse) Frob2() float64 {
	f := 0.0
	for _, r := range s.rows {
		f += r.Norm2()
	}
	return f
}

// Density returns NNZ / (rows·cols), 0 for an empty matrix.
func (s *Sparse) Density() float64 {
	r, c := s.Dims()
	if r == 0 || c == 0 {
		return 0
	}
	return float64(s.NNZ()) / (float64(r) * float64(c))
}

// ToDense materializes the matrix.
func (s *Sparse) ToDense() *Dense {
	r, c := s.Dims()
	out := New(r, c)
	for i, row := range s.rows {
		row.AddTo(out.Row(i), 1)
	}
	return out
}

// MulVec returns S·x in O(nnz) time.
func (s *Sparse) MulVec(x []float64) []float64 {
	out := make([]float64, len(s.rows))
	for i, r := range s.rows {
		out[i] = r.Dot(x)
	}
	return out
}

// TMulVec returns Sᵀ·x in O(nnz) time.
func (s *Sparse) TMulVec(x []float64) []float64 {
	if len(x) != len(s.rows) {
		panic(fmt.Sprintf("matrix: sparse TMulVec length %d vs %d rows", len(x), len(s.rows)))
	}
	out := make([]float64, s.cols)
	for i, r := range s.rows {
		if x[i] != 0 {
			r.AddTo(out, x[i])
		}
	}
	return out
}

// Gram returns SᵀS (dense d×d) in O(Σ nnz_i²) time.
func (s *Sparse) Gram() *Dense {
	out := New(s.cols, s.cols)
	for _, r := range s.rows {
		for a, ia := range r.Indices {
			va := r.Values[a]
			rowOut := out.Row(ia)
			for b, ib := range r.Indices {
				rowOut[ib] += va * r.Values[b]
			}
		}
	}
	return out
}
