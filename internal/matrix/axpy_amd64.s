//go:build amd64 && !purego

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() uint32
TEXT ·xgetbv0(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, ret+0(FP)
	RET

// func axpy4AVX(dst, r0, r1, r2, r3 *float64, n int, v *[4]float64)
//
// dst[j] += v[0]*r0[j] + v[1]*r1[j] + v[2]*r2[j] + v[3]*r3[j], each lane a
// fused-multiply-add chain in row order r0→r3 (matching axpy4Generic).
// Main loop handles 8 doubles per iteration (two YMM accumulators), then a
// 4-wide step, then a scalar FMA tail.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), R8
	MOVQ r2+24(FP), R9
	MOVQ r3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ v+48(FP), DX
	VBROADCASTSD (DX), Y8
	VBROADCASTSD 8(DX), Y9
	VBROADCASTSD 16(DX), Y10
	VBROADCASTSD 24(DX), Y11
	XORQ AX, AX
	MOVQ CX, BX
	ANDQ $-8, BX
	CMPQ AX, BX
	JGE  tail4

loop8:
	VMOVUPD (DI)(AX*8), Y0
	VMOVUPD 32(DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y8, Y0
	VFMADD231PD 32(SI)(AX*8), Y8, Y1
	VFMADD231PD (R8)(AX*8), Y9, Y0
	VFMADD231PD 32(R8)(AX*8), Y9, Y1
	VFMADD231PD (R9)(AX*8), Y10, Y0
	VFMADD231PD 32(R9)(AX*8), Y10, Y1
	VFMADD231PD (R10)(AX*8), Y11, Y0
	VFMADD231PD 32(R10)(AX*8), Y11, Y1
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y1, 32(DI)(AX*8)
	ADDQ $8, AX
	CMPQ AX, BX
	JL   loop8

tail4:
	MOVQ CX, BX
	ANDQ $-4, BX
	CMPQ AX, BX
	JGE  tail1
	VMOVUPD (DI)(AX*8), Y0
	VFMADD231PD (SI)(AX*8), Y8, Y0
	VFMADD231PD (R8)(AX*8), Y9, Y0
	VFMADD231PD (R9)(AX*8), Y10, Y0
	VFMADD231PD (R10)(AX*8), Y11, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX

tail1:
	CMPQ AX, CX
	JGE  done

scalar:
	VMOVSD (DI)(AX*8), X0
	VFMADD231SD (SI)(AX*8), X8, X0
	VFMADD231SD (R8)(AX*8), X9, X0
	VFMADD231SD (R9)(AX*8), X10, X0
	VFMADD231SD (R10)(AX*8), X11, X0
	VMOVSD X0, (DI)(AX*8)
	INCQ AX
	CMPQ AX, CX
	JL   scalar

done:
	VZEROUPPER
	RET

// func gramGroup4AVX(out, rows *float64, d, lo, hi int)
//
// Folds four contiguous input rows (rows[0:4d], row-major, stride d) into
// the upper-triangle output rows i in [lo, hi):
//   out[i*d+j] += Σ_t rows[t*d+i]·rows[t*d+j]   for j in [i, d)
// per entry one FMA chain in row order t=0→3, identical to axpy4AVX. The
// i-loop lives in assembly so one call covers a whole row group.
TEXT ·gramGroup4AVX(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ rows+8(FP), SI
	MOVQ d+16(FP), DX
	MOVQ lo+24(FP), R11
	MOVQ hi+32(FP), R12
	MOVQ DX, R13
	SHLQ $3, R13              // R13 = row stride in bytes
	LEAQ (SI)(R13*1), R8      // rows[1]
	LEAQ (R8)(R13*1), R9      // rows[2]
	LEAQ (R9)(R13*1), R10     // rows[3]
	MOVQ R11, BX              // BX = i
	MOVQ R11, CX
	IMULQ R13, CX
	ADDQ DI, CX               // CX = &out[i*d]
	MOVQ DX, R11
	SUBQ $4, R11              // R11 = d-4 (4-wide loop bound)

gramiloop:
	CMPQ BX, R12
	JGE  gramdone
	VBROADCASTSD (SI)(BX*8), Y8
	VBROADCASTSD (R8)(BX*8), Y9
	VBROADCASTSD (R9)(BX*8), Y10
	VBROADCASTSD (R10)(BX*8), Y11
	MOVQ BX, AX               // AX = j, starts at the diagonal

gramj4:
	CMPQ AX, R11
	JG   gramjtail
	VMOVUPD (CX)(AX*8), Y0
	VFMADD231PD (SI)(AX*8), Y8, Y0
	VFMADD231PD (R8)(AX*8), Y9, Y0
	VFMADD231PD (R9)(AX*8), Y10, Y0
	VFMADD231PD (R10)(AX*8), Y11, Y0
	VMOVUPD Y0, (CX)(AX*8)
	ADDQ $4, AX
	JMP  gramj4

gramjtail:
	CMPQ AX, DX
	JGE  gramnexti
	VMOVSD (CX)(AX*8), X0
	VFMADD231SD (SI)(AX*8), X8, X0
	VFMADD231SD (R8)(AX*8), X9, X0
	VFMADD231SD (R9)(AX*8), X10, X0
	VFMADD231SD (R10)(AX*8), X11, X0
	VMOVSD X0, (CX)(AX*8)
	INCQ AX
	JMP  gramjtail

gramnexti:
	INCQ BX
	ADDQ R13, CX
	JMP  gramiloop

gramdone:
	VZEROUPPER
	RET
