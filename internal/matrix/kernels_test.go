package matrix

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// relTol compares entrywise with a relative tolerance scaled by magnitude.
func relTol(t *testing.T, name string, got, want *Dense, tol float64) {
	t.Helper()
	gr, gc := got.Dims()
	wr, wc := want.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("%s: dims %dx%d != %dx%d", name, gr, gc, wr, wc)
	}
	scale := want.MaxAbs()
	if scale < 1 {
		scale = 1
	}
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > tol*scale {
				t.Fatalf("%s: entry (%d,%d) got %v want %v (|diff|=%g > %g)",
					name, i, j, got.At(i, j), want.At(i, j), d, tol*scale)
			}
		}
	}
}

func relTolVec(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", name, len(got), len(want))
	}
	scale := 1.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > tol*scale {
			t.Fatalf("%s: entry %d got %v want %v", name, i, got[i], want[i])
		}
	}
}

func kernelRand(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func kernelRandVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestBlockedKernelsMatchReference exercises the blocked kernels against
// the serial reference loops across shapes that hit every path: group and
// panel remainders, sub-group matrices, and empty dimensions. The blocked
// kernels reorder each entry's products into fixed fused groups of four,
// so the comparison uses a tolerance (see kernels.go); exact equality is
// only promised across pool widths, not against the reference chain.
func TestBlockedKernelsMatchReference(t *testing.T) {
	shapes := []struct{ n, d, c int }{
		{1, 1, 1},
		{3, 2, 5},
		{4, 4, 4},
		{5, 3, 2},
		{17, 7, 9},
		{64, 16, 8},
		{130, 33, 31},
		{257, 64, 12},
		{1031, 48, 48},
	}
	for _, s := range shapes {
		m := kernelRand(s.n, s.d, int64(1000*s.n+s.d))
		b := kernelRand(s.n, s.c, int64(2000*s.n+s.c))
		k := kernelRand(s.d, s.c, int64(3000*s.d+s.c))
		bt := kernelRand(s.c, s.d, int64(4000*s.c+s.d))
		x := kernelRandVec(s.d, int64(s.n))
		y := kernelRandVec(s.n, int64(s.d))

		relTol(t, "Mul", m.Mul(k), RefMul(m, k), 1e-13)
		relTol(t, "TMul", m.TMul(b), RefTMul(m, b), 1e-12)
		relTol(t, "MulT", m.MulT(bt), RefMulT(m, bt), 1e-13)
		relTol(t, "Gram", m.Gram(), RefGram(m), 1e-12)
		relTolVec(t, "MulVec", m.MulVec(x), RefMulVec(m, x), 1e-13)
		relTolVec(t, "TMulVec", m.TMulVec(y), RefTMulVec(m, y), 1e-12)
	}
}

// TestBlockedKernelsEmpty checks the degenerate shapes don't panic and
// produce correctly-sized zero results.
func TestBlockedKernelsEmpty(t *testing.T) {
	empty := New(0, 5)
	if g := empty.Gram(); g.Rows() != 5 || g.Cols() != 5 || g.Frob2() != 0 {
		t.Fatalf("Gram of 0×5 = %v", g)
	}
	if p := empty.TMul(New(0, 3)); p.Rows() != 5 || p.Cols() != 3 {
		t.Fatalf("TMul of empty = %v", p)
	}
	wide := New(3, 0)
	if g := wide.Gram(); g.Rows() != 0 || g.Cols() != 0 {
		t.Fatalf("Gram of 3×0 = %v", g)
	}
	if out := New(2, 0).Mul(New(0, 4)); out.Rows() != 2 || out.Cols() != 4 || out.Frob2() != 0 {
		t.Fatalf("Mul with empty inner dim = %v", out)
	}
}

// TestAxpy4SIMDMatchesGeneric cross-checks the SIMD micro-kernel against
// the portable loop on every lane-count class (8-wide body, 4-wide step,
// scalar tail). The SIMD path fuses multiply-add, so a small tolerance
// covers the removed intermediate rounding.
func TestAxpy4SIMDMatchesGeneric(t *testing.T) {
	if !simdAvailable {
		t.Skip("no SIMD micro-kernel on this platform")
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 31, 64, 100} {
		dst := make([]float64, n)
		ref := make([]float64, n)
		rows := make([][]float64, 4)
		for i := range dst {
			dst[i] = rng.NormFloat64()
			ref[i] = dst[i]
		}
		for r := range rows {
			rows[r] = make([]float64, n)
			for i := range rows[r] {
				rows[r][i] = rng.NormFloat64()
			}
		}
		v := [4]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		axpy4SIMD(dst, rows[0], rows[1], rows[2], rows[3], v[0], v[1], v[2], v[3])
		axpy4Generic(ref, rows[0], rows[1], rows[2], rows[3], v[0], v[1], v[2], v[3])
		for i := range dst {
			if math.Abs(dst[i]-ref[i]) > 1e-13*(1+math.Abs(ref[i])) {
				t.Fatalf("n=%d lane %d: simd %v generic %v", n, i, dst[i], ref[i])
			}
		}
	}
}

// TestKernelsGenericPathMatches runs the full kernels with SIMD forced
// off and checks the portable path agrees with the reference loops too.
func TestKernelsGenericPathMatches(t *testing.T) {
	prev := setSIMD(false)
	defer setSIMD(prev)
	m := kernelRand(203, 37, 5)
	b := kernelRand(203, 21, 6)
	k := kernelRand(37, 29, 8)
	relTol(t, "Gram(generic)", m.Gram(), RefGram(m), 1e-12)
	relTol(t, "TMul(generic)", m.TMul(b), RefTMul(m, b), 1e-12)
	relTol(t, "Mul(generic)", m.Mul(k), RefMul(m, k), 1e-13)
}

// TestGramSymmetric: the mirrored lower triangle must equal the computed
// upper triangle exactly (it is copied, not recomputed).
func TestGramSymmetric(t *testing.T) {
	m := kernelRand(97, 23, 9)
	g := m.Gram()
	for i := 0; i < 23; i++ {
		for j := i + 1; j < 23; j++ {
			if g.At(i, j) != g.At(j, i) {
				t.Fatalf("Gram not exactly symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestAppendRowNeverAliases is the regression test for the AppendRow
// aliasing hazard: the old three-index append shared the backing array
// with m whenever spare capacity had been pre-grown (e.g. a SliceRows
// view of a taller matrix), so writes to the result leaked into the
// source. The contract is now an unconditional copy.
func TestAppendRowNeverAliases(t *testing.T) {
	// Case 1: SliceRows view with capacity beyond rows*cols.
	tall := kernelRand(6, 3, 1)
	orig := tall.Clone()
	view := tall.SliceRows(0, 2) // backing array has room for 4 more rows
	ext := view.AppendRow([]float64{7, 8, 9})
	ext.Set(2, 0, 1e9)
	ext.Set(0, 0, 1e9)
	if !tall.Equal(orig) {
		t.Fatalf("AppendRow result aliases the source: source mutated\n%v", tall)
	}
	// Case 2: the appended row slice must be copied too.
	row := []float64{1, 2, 3}
	ext2 := view.AppendRow(row)
	row[0] = -42
	if ext2.At(2, 0) == -42 {
		t.Fatal("AppendRow shares the appended row slice")
	}
	// Case 3: empty matrix adopts the row by copy.
	var empty Dense
	ext3 := empty.AppendRow(row)
	row[1] = -43
	if ext3.At(0, 1) == -43 {
		t.Fatal("AppendRow on empty matrix shares the row slice")
	}
}

// TestGramNoSteadyAllocs: the Gram kernel must not allocate beyond its
// output (no packing buffers) — the CI benchmark smoke enforces the same
// invariant via BenchmarkGram's reported allocs. At pool width 1 the only
// allocations are the output struct, its data slice, and the parallel.For
// closure.
func TestGramNoSteadyAllocs(t *testing.T) {
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	m := kernelRand(256, 32, 3)
	allocs := testing.AllocsPerRun(20, func() {
		_ = m.Gram()
	})
	if allocs > 3 {
		t.Fatalf("Gram allocates %v times per call; want ≤3 (output + closure)", allocs)
	}
}
