package rowsample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestSampleSize(t *testing.T) {
	if got := SampleSize(0.1); got != 100 {
		t.Fatalf("SampleSize(0.1) = %d", got)
	}
	if got := SampleSize(0.5); got != 4 {
		t.Fatalf("SampleSize(0.5) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleSize(0)
}

func TestSampleUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := workload.LowRankPlusNoise(rng, 60, 8, 3, 10, 0.8, 0.3)
	trials, m := 500, 25
	sum := matrix.New(8, 8)
	for i := 0; i < trials; i++ {
		b := Sample(a, m, rng)
		if b.Rows() != m {
			t.Fatalf("rows = %d, want %d", b.Rows(), m)
		}
		sum = sum.Add(b.Gram())
	}
	avg := sum.Scale(1 / float64(trials))
	norm, err := linalg.SpectralNormSym(avg.Sub(a.Gram()))
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.15*a.Frob2() {
		t.Fatalf("sample biased by %v (‖A‖F²=%v)", norm, a.Frob2())
	}
}

func TestSampleErrorBound(t *testing.T) {
	// ‖AᵀA−BᵀB‖₂ ≤ ε‖A‖F² with constant probability at m = 1/ε².
	rng := rand.New(rand.NewSource(2))
	eps := 0.35
	m := SampleSize(eps)
	ok := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		a := workload.Gaussian(rng, 100, 10)
		b := Sample(a, m, rng)
		ce, err := linalg.CovarianceError(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ce <= 2*eps*a.Frob2() { // constant-probability guarantee: margin 2
			ok++
		}
	}
	if ok < trials*3/5 {
		t.Fatalf("only %d/%d trials within 2ε‖A‖F²", ok, trials)
	}
}

func TestSampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if b := Sample(matrix.New(5, 4), 3, rng); b.Rows() != 0 {
		t.Fatal("zero matrix should yield empty sample")
	}
	if b := Sample(matrix.New(0, 4), 3, rng); b.Rows() != 0 {
		t.Fatal("empty matrix should yield empty sample")
	}
	a := workload.Gaussian(rng, 5, 4)
	if b := Sample(a, 0, rng); b.Rows() != 0 {
		t.Fatal("m=0 should yield empty sample")
	}
}

func TestSampleSkipsZeroRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := matrix.New(4, 3)
	a.SetRow(1, []float64{1, 2, 3}) // only nonzero row
	b := Sample(a, 10, rng)
	if b.Rows() != 10 {
		t.Fatalf("rows = %d", b.Rows())
	}
	// Every sampled row must be a rescaled copy of row 1: p=1 ⇒ w = 1/√10.
	w := 1 / math.Sqrt(10)
	for i := 0; i < 10; i++ {
		if math.Abs(b.At(i, 0)-w*1) > 1e-12 {
			t.Fatalf("sampled row %d wrong: %v", i, b.Row(i))
		}
	}
}

func TestReservoirMatchesBatchDistribution(t *testing.T) {
	// The streaming reservoir must give the same error guarantee as batch
	// sampling: check measured coverr over trials.
	rng := rand.New(rand.NewSource(5))
	a := workload.Gaussian(rng, 150, 8)
	m := 30
	okBatch, okStream := 0, 0
	const trials = 15
	for i := 0; i < trials; i++ {
		batch := Sample(a, m, rng)
		res := NewReservoir(8, m, rng)
		for r := 0; r < a.Rows(); r++ {
			res.Update(a.Row(r))
		}
		stream := res.Matrix()
		ceB, err := linalg.CovarianceError(a, batch)
		if err != nil {
			t.Fatal(err)
		}
		ceS, err := linalg.CovarianceError(a, stream)
		if err != nil {
			t.Fatal(err)
		}
		bound := a.Frob2() / math.Sqrt(float64(m)) * 2.5
		if ceB <= bound {
			okBatch++
		}
		if ceS <= bound {
			okStream++
		}
	}
	if okBatch < 10 || okStream < 10 {
		t.Fatalf("batch %d/%d, stream %d/%d within bound", okBatch, trials, okStream, trials)
	}
}

func TestReservoirBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	res := NewReservoir(3, 5, rng)
	res.Update([]float64{1, 0, 0})
	res.Update([]float64{0, 2, 0})
	res.Update(make([]float64, 3)) // zero row: counted, not sampled
	if res.Seen() != 3 {
		t.Fatalf("Seen = %d", res.Seen())
	}
	if res.TotalMass() != 5 {
		t.Fatalf("TotalMass = %v", res.TotalMass())
	}
	if got := res.Matrix(); got.Rows() == 0 || got.Rows() > 5 {
		t.Fatalf("Matrix rows = %d", got.Rows())
	}
}

func TestReservoirEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res := NewReservoir(3, 4, rng)
	if res.Matrix().Rows() != 0 {
		t.Fatal("empty reservoir must return empty matrix")
	}
	res.Update(make([]float64, 3))
	if res.Matrix().Rows() != 0 {
		t.Fatal("zero-mass reservoir must return empty matrix")
	}
}

func TestReservoirPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewReservoir(0, 3, nil) },
		func() { NewReservoir(3, 0, nil) },
		func() { NewReservoir(3, 2, rand.New(rand.NewSource(0))).Update([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDistributedSampleMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := workload.Gaussian(rng, 120, 8)
	parts := workload.Split(a, 4, workload.Skewed, nil)
	m := 40
	// Unbiasedness of the concatenated distributed sample.
	trials := 300
	sum := matrix.New(8, 8)
	for i := 0; i < trials; i++ {
		locals := DistributedSample(parts, m, rng)
		b := matrix.Stack(locals...)
		sum = sum.Add(b.Gram())
	}
	avg := sum.Scale(1 / float64(trials))
	norm, err := linalg.SpectralNormSym(avg.Sub(a.Gram()))
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.15*a.Frob2() {
		t.Fatalf("distributed sample biased by %v", norm)
	}
}

func TestDistributedSampleCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := workload.Gaussian(rng, 60, 5)
	parts := workload.Split(a, 3, workload.Contiguous, nil)
	locals := DistributedSample(parts, 20, rng)
	total := 0
	for _, l := range locals {
		total += l.Rows()
	}
	if total != 20 {
		t.Fatalf("total sampled rows = %d, want 20", total)
	}
}

func TestDistributedSampleZeroMass(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	parts := []*matrix.Dense{matrix.New(4, 3), matrix.New(2, 3)}
	locals := DistributedSample(parts, 10, rng)
	for _, l := range locals {
		if l.Rows() != 0 {
			t.Fatal("zero-mass input must produce empty samples")
		}
	}
}

func TestMultinomialSplitSkipsZeroMassBuckets(t *testing.T) {
	// A draw of exactly 0 used to select bucket 0 even with zero mass
	// (u=0 ≤ run=0 after adding masses[0]=0), assigning samples to servers
	// that then emitted never-populated all-zero rows.
	masses := []float64{0, 2, 0, 3, 0}
	counts := splitMultinomial(masses, 1, func() float64 { return 0 })
	if counts[0] != 0 || counts[1] != 1 {
		t.Fatalf("draw 0 with leading zero mass: counts = %v, want bucket 1", counts)
	}
	// Property: across many random draws no zero-mass bucket ever receives a
	// sample and no sample is lost.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		counts := MultinomialSplit(masses, 200, rng)
		total := 0
		for i, c := range counts {
			if masses[i] == 0 && c != 0 {
				t.Fatalf("trial %d: zero-mass bucket %d got %d samples", trial, i, c)
			}
			total += c
		}
		if total != 200 {
			t.Fatalf("trial %d: %d of 200 samples assigned", trial, total)
		}
	}
}

func TestMultinomialSplitClampsRoundingOverflow(t *testing.T) {
	// If floating-point rounding leaves u beyond the accumulated mass, the
	// cumulative walk finds no bucket; the old code silently dropped the
	// sample. The split must clamp such draws to the last positive-mass
	// bucket instead.
	masses := []float64{1, 3, 0} // trailing zero: clamp must land on 1, not 2
	counts := splitMultinomial(masses, 3, func() float64 { return 1.0000000000000002 })
	if counts[1] != 3 {
		t.Fatalf("overflow draws not clamped to last positive bucket: %v", counts)
	}
	if counts[0]+counts[1]+counts[2] != 3 {
		t.Fatalf("samples dropped: %v", counts)
	}
}

func TestMultinomialSplitDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct {
		masses []float64
		m      int
	}{
		{nil, 5},
		{[]float64{}, 5},
		{[]float64{0, 0}, 5},
		{[]float64{1, 2}, 0},
	} {
		counts := MultinomialSplit(tc.masses, tc.m, rng)
		if len(counts) != len(tc.masses) {
			t.Fatalf("len(counts) = %d, want %d", len(counts), len(tc.masses))
		}
		for _, c := range counts {
			if c != 0 {
				t.Fatalf("degenerate input %v m=%d: counts = %v", tc.masses, tc.m, counts)
			}
		}
	}
}

func TestDistributedSampleNoZeroRows(t *testing.T) {
	// A server holding only zero mass must contribute no rows, and every
	// emitted row must carry positive norm — the old split could assign
	// samples to zero-mass servers, whose output rows stayed all-zero.
	rng := rand.New(rand.NewSource(13))
	a := workload.Gaussian(rng, 50, 6)
	parts := workload.Split(a, 2, workload.Contiguous, nil)
	parts = append([]*matrix.Dense{matrix.New(5, 6)}, parts...) // zero-mass server first
	for trial := 0; trial < 30; trial++ {
		locals := DistributedSample(parts, 25, rng)
		if locals[0].Rows() != 0 {
			t.Fatalf("trial %d: zero-mass server sampled %d rows", trial, locals[0].Rows())
		}
		total := 0
		for si, l := range locals {
			total += l.Rows()
			for r := 0; r < l.Rows(); r++ {
				if matrix.Norm2(l.Row(r)) == 0 {
					t.Fatalf("trial %d: server %d emitted all-zero sampled row %d", trial, si, r)
				}
			}
		}
		if total != 25 {
			t.Fatalf("trial %d: %d of 25 samples returned", trial, total)
		}
	}
}
