// Package rowsample implements the classic squared-norm row sampling
// baseline of Drineas–Kannan–Mahoney ([10] in the paper): sample
// m = O(1/ε²) rows of A i.i.d. with replacement, each row i picked with
// probability p_i = ‖A_i‖²/‖A‖F² and rescaled by 1/√(m·p_i). The resulting
// matrix B satisfies ‖AᵀA−BᵀB‖₂ ≤ ε‖A‖F² with constant probability.
//
// In the distributed model this costs O(s + d/ε²) words: one scalar round to
// learn the per-server masses, then the coordinator assigns sample counts.
// The paper uses it as the baseline whose quadratic 1/ε² dependence SVS
// beats. A one-pass weighted reservoir variant is provided for the
// streaming servers.
//
// Floating-point edge cases in the estimator are handled explicitly
// (MultinomialSplit): a cumulative-mass walk can end with run < total after
// rounding, which used to silently drop a sample (undercounting m and
// biasing BᵀB low), and a draw of exactly 0 could land on a zero-mass
// bucket, which used to emit never-populated all-zero rows. The split now
// skips zero-mass buckets entirely and clamps any rounding fall-through to
// the last positive-mass bucket, so exactly m samples always land on
// positive-mass buckets.
package rowsample

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/matrix"
)

// SampleSize returns the number of rows m = ⌈c/ε²⌉ needed for covariance
// error ε‖A‖F² with constant probability; c is an absolute constant (the
// analyses of [10, 30, 12] give small constants; we use 1, and the
// benchmarks report measured error next to the target).
func SampleSize(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("rowsample: epsilon %v out of (0,1)", eps))
	}
	return int(math.Ceil(1 / (eps * eps)))
}

// Sample draws m rows of a i.i.d. proportional to squared row norms, with
// replacement, rescaled so E[BᵀB] = AᵀA.
func Sample(a *matrix.Dense, m int, rng *rand.Rand) *matrix.Dense {
	n, d := a.Dims()
	if m <= 0 {
		return matrix.New(0, d)
	}
	total := a.Frob2()
	if total == 0 || n == 0 {
		return matrix.New(0, d)
	}
	cum := make([]float64, n)
	run := 0.0
	for i := 0; i < n; i++ {
		run += a.RowNorm2(i) / total
		cum[i] = run
	}
	out := matrix.New(m, d)
	for t := 0; t < m; t++ {
		u := rng.Float64()
		i := searchCum(cum, u)
		p := a.RowNorm2(i) / total
		if p == 0 {
			t-- // zero row drawn by float edge case; redraw
			continue
		}
		w := 1 / math.Sqrt(float64(m)*p)
		row := out.Row(t)
		for j, v := range a.Row(i) {
			row[j] = w * v
		}
	}
	return out
}

// RowIter delivers one stream row per call, returning false after the last
// row — the minimal iteration contract, satisfied by the Next method of any
// workload row source.
type RowIter func() ([]float64, bool)

// SampleStream draws count rows from the stream i.i.d. proportional to
// squared norm, with replacement, in one pass and O(count·d) working space.
// localMass must equal the stream's exact Σ‖row‖² (from a prior pass; the
// distributed protocol learns it in the calibration round), and each sampled
// row is rescaled by 1/√(m·p) against the global probability
// p = ‖row‖²/globalMass, where m is the global draw count across all
// servers. It consumes exactly count rng.Float64 draws in slot order — the
// same sequence Sample consumes — so fixed-seed runs are stable, and it
// never reads past the row that satisfies the last draw.
//
// Zero-norm rows receive no probability mass, and a draw that floating-point
// rounding pushes past the accumulated mass is clamped to the last
// positive-norm row (mirroring MultinomialSplit) instead of being dropped.
func SampleStream(next RowIter, d, count, m int, localMass, globalMass float64, rng *rand.Rand) *matrix.Dense {
	if count <= 0 || localMass <= 0 || globalMass <= 0 {
		return matrix.New(0, d)
	}
	// Draw all count uniforms up front in slot order, then serve them in
	// sorted order as the cumulative normalized mass passes each target.
	type target struct {
		u    float64
		slot int
	}
	targets := make([]target, count)
	for t := 0; t < count; t++ {
		targets[t] = target{rng.Float64(), t}
	}
	sort.Slice(targets, func(a, b int) bool {
		if targets[a].u != targets[b].u {
			return targets[a].u < targets[b].u
		}
		return targets[a].slot < targets[b].slot
	})
	out := matrix.New(count, d)
	run := 0.0
	ptr := 0
	lastPos := make([]float64, d) // most recent positive-norm row, for clamping
	lastN2 := 0.0
	for ptr < count {
		row, ok := next()
		if !ok {
			break
		}
		n2 := matrix.Norm2(row)
		if n2 == 0 {
			continue
		}
		copy(lastPos, row)
		lastN2 = n2
		run += n2 / localMass
		w := 1 / math.Sqrt(float64(m)*n2/globalMass)
		for ptr < count && targets[ptr].u <= run {
			dst := out.Row(targets[ptr].slot)
			for j, v := range row {
				dst[j] = w * v
			}
			ptr++
		}
	}
	for ; ptr < count && lastN2 > 0; ptr++ {
		w := 1 / math.Sqrt(float64(m)*lastN2/globalMass)
		dst := out.Row(targets[ptr].slot)
		for j, v := range lastPos {
			dst[j] = w * v
		}
	}
	return out
}

// MultinomialSplit distributes m draws over buckets proportionally to their
// masses (one rng.Float64 per draw, so fixed-seed callers keep a stable
// draw sequence). All m draws land on positive-mass buckets: zero-mass
// buckets are skipped outright — a draw of exactly 0 can otherwise select
// one — and a draw that floating-point rounding pushes past the accumulated
// total is clamped to the last positive-mass bucket instead of being
// silently discarded. With zero total mass (or no buckets) all counts are 0.
func MultinomialSplit(masses []float64, m int, rng *rand.Rand) []int {
	return splitMultinomial(masses, m, rng.Float64)
}

// splitMultinomial is MultinomialSplit over an arbitrary draw() ∈ [0,1)
// source, so tests can force the exact edge-case draws.
func splitMultinomial(masses []float64, m int, draw func() float64) []int {
	counts := make([]int, len(masses))
	total := 0.0
	lastPos := -1
	for i, v := range masses {
		total += v
		if v > 0 {
			lastPos = i
		}
	}
	if total <= 0 || lastPos < 0 {
		return counts
	}
	for t := 0; t < m; t++ {
		u := draw() * total
		run := 0.0
		chosen := -1
		for i, v := range masses {
			if v == 0 {
				continue
			}
			run += v
			if u <= run {
				chosen = i
				break
			}
		}
		if chosen < 0 {
			chosen = lastPos // rounding left u > Σ masses; never drop the draw
		}
		counts[chosen]++
	}
	return counts
}

func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Reservoir maintains a one-pass weighted sample of m rows with replacement
// over a stream, using m independent A-Chao-style reservoirs: each of the m
// slots independently holds a row chosen with probability proportional to
// its squared norm among all rows seen. This is the streaming-server form
// of the baseline.
type Reservoir struct {
	d     int
	m     int
	rng   *rand.Rand
	total float64 // Σ ‖row‖² seen
	rows  *matrix.Dense
	norm2 []float64 // squared norm of the row currently held by each slot
	seen  int
}

// NewReservoir creates a reservoir of m rows over dimension d.
func NewReservoir(d, m int, rng *rand.Rand) *Reservoir {
	if d <= 0 || m <= 0 {
		panic(fmt.Sprintf("rowsample: invalid reservoir d=%d m=%d", d, m))
	}
	return &Reservoir{d: d, m: m, rng: rng, rows: matrix.New(m, d), norm2: make([]float64, m)}
}

// Update offers one row to every slot.
func (r *Reservoir) Update(row []float64) {
	if len(row) != r.d {
		panic(fmt.Sprintf("rowsample: row length %d != d=%d", len(row), r.d))
	}
	n2 := matrix.Norm2(row)
	r.total += n2
	r.seen++
	if n2 == 0 || r.total == 0 {
		return
	}
	p := n2 / r.total
	for t := 0; t < r.m; t++ {
		if r.rng.Float64() < p {
			r.rows.SetRow(t, row)
			r.norm2[t] = n2
		}
	}
}

// Seen returns the number of rows offered.
func (r *Reservoir) Seen() int { return r.seen }

// TotalMass returns Σ‖row‖² over the stream so far.
func (r *Reservoir) TotalMass() float64 { return r.total }

// Matrix returns the current rescaled sample: slot t holds its row scaled by
// 1/√(m·p_t) with p_t = ‖row_t‖²/Σ‖row‖². Empty slots (possible only when
// the stream had zero mass) are dropped.
func (r *Reservoir) Matrix() *matrix.Dense {
	out := matrix.New(0, r.d)
	if r.total == 0 {
		return out
	}
	for t := 0; t < r.m; t++ {
		if r.norm2[t] == 0 {
			continue
		}
		p := r.norm2[t] / r.total
		w := 1 / math.Sqrt(float64(r.m)*p)
		row := matrix.CopyVec(r.rows.Row(t))
		matrix.ScaleVec(row, w)
		out = out.AppendRow(row)
	}
	return out
}

// DistributedSample runs the two-round distributed baseline: the coordinator
// learns each server's mass ‖A_i‖F² (s words), splits the m global samples
// multinomially across servers by mass, and each server returns its local
// rows sampled by squared norm, rescaled against the global mass. The
// concatenated output has the same distribution as Sample on the full
// matrix. Returns one sample matrix per server.
func DistributedSample(parts []*matrix.Dense, m int, rng *rand.Rand) []*matrix.Dense {
	s := len(parts)
	masses := make([]float64, s)
	total := 0.0
	for i, p := range parts {
		masses[i] = p.Frob2()
		total += masses[i]
	}
	out := make([]*matrix.Dense, s)
	if total == 0 {
		for i := range out {
			out[i] = matrix.New(0, parts[i].Cols())
		}
		return out
	}
	counts := MultinomialSplit(masses, m, rng)
	for i, p := range parts {
		d := p.Cols()
		mi := counts[i]
		local := matrix.New(mi, d)
		if mi > 0 && masses[i] > 0 {
			n := p.Rows()
			cum := make([]float64, n)
			run := 0.0
			for r := 0; r < n; r++ {
				run += p.RowNorm2(r) / masses[i]
				cum[r] = run
			}
			for t := 0; t < mi; t++ {
				r := searchCum(cum, rng.Float64())
				pGlobal := p.RowNorm2(r) / total
				if pGlobal == 0 {
					t--
					continue
				}
				w := 1 / math.Sqrt(float64(m)*pGlobal)
				row := local.Row(t)
				for j, v := range p.Row(r) {
					row[j] = w * v
				}
			}
		}
		out[i] = local
	}
	return out
}
