package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// A rank-deficient input leaves trailing singular values at exactly zero.
// The i.i.d. sampler's CDF walk must never select one of those indices
// (probability p_j = 0 would yield a 0/√0 = NaN row), no matter how
// floating-point rounding places cum[lastPositive] relative to the draw.
func TestIIDRowSampleAggregatedRankDeficient(t *testing.T) {
	const d, rank, m = 16, 3, 500
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Only the first `rank` columns are nonzero, with widely spread
		// magnitudes so the CDF accumulates real rounding error.
		a := matrix.New(40, d)
		for i := 0; i < a.Rows(); i++ {
			row := a.Row(i)
			for j := 0; j < rank; j++ {
				row[j] = rng.NormFloat64() * math.Pow(10, float64(j-1))
			}
		}
		b, err := IIDRowSampleAggregated(a, m, rng)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b.Rows() != m {
			t.Fatalf("seed %d: got %d rows, want %d", seed, b.Rows(), m)
		}
		for i := 0; i < b.Rows(); i++ {
			for _, v := range b.Row(i) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("seed %d: non-finite entry in sampled row %d", seed, i)
				}
			}
		}
	}
}

// The zero matrix (total mass 0) must come back as an empty sketch, not a
// division by zero.
func TestIIDRowSampleAggregatedZeroMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b, err := IIDRowSampleAggregated(matrix.New(10, 6), 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 0 || b.Cols() != 6 {
		t.Fatalf("zero input: got %dx%d, want 0x6", b.Rows(), b.Cols())
	}
}
