package core

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/matrix"
)

// Decomp implements Lemma 6: it splits B into (T, R) with
//
//	BᵀB = TᵀT + RᵀR  and  ‖R‖F² = ‖B − [B]_k‖F²,
//
// where T holds the top-k rows of the aggregated form ΣVᵀ and R the
// remaining rows. If B has fewer than k nonzero singular values, R is empty.
func Decomp(b *matrix.Dense, k int) (t, r *matrix.Dense, err error) {
	if k < 0 {
		panic(fmt.Sprintf("core: Decomp with negative k=%d", k))
	}
	svd, err := linalg.ComputeSVD(b)
	if err != nil {
		return nil, nil, err
	}
	return DecompFromSVD(svd, k)
}

// DecompFromSVD is Decomp on a precomputed SVD.
func DecompFromSVD(svd *linalg.SVD, k int) (t, r *matrix.Dense, err error) {
	agg := svd.Aggregated()
	n := agg.Rows()
	if k > n {
		k = n
	}
	return agg.CopyRows(0, k), agg.CopyRows(k, n), nil
}
