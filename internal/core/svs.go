package core

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/matrix"
)

// SVS runs Algorithm 1 of the paper on a: compute the SVD A = UΣVᵀ, then for
// each singular triple keep the row σ_j·v_jᵀ of the aggregated form
// agg(A) = ΣVᵀ independently with probability g(σ_j²), rescaled by
// 1/√g(σ_j²). Zero rows (unsampled vectors) are removed.
//
// The output B satisfies E[BᵀB] = AᵀA (Claim 3); its concentration is
// governed by the Matrix Bernstein inequality (Theorem 4).
func SVS(a *matrix.Dense, g SamplingFunc, rng *rand.Rand) (*matrix.Dense, error) {
	svd, err := linalg.ComputeSVD(a)
	if err != nil {
		return nil, err
	}
	return SVSFromSVD(svd, g, rng), nil
}

// SVSFromSVD is SVS applied to a precomputed SVD, avoiding a second
// factorization when the caller already has one (as in the adaptive sketch,
// where Decomp and SVS share the SVD of the local FD sketch).
func SVSFromSVD(svd *linalg.SVD, g SamplingFunc, rng *rand.Rand) *matrix.Dense {
	d, _ := svd.V.Dims()
	var rows [][]float64
	for j, sigma := range svd.Sigma {
		p := g.Prob(sigma * sigma)
		if p <= 0 {
			continue
		}
		if p < 1 && rng.Float64() >= p {
			continue
		}
		// A sampling function may return p > 1 (the paper's g's are capped
		// analytically, but nothing enforces that at this interface). The
		// row is then kept surely, so the unbiasedness weight is 1/√1, not
		// 1/√p — without the clamp the kept row would be rescaled by
		// σ/√p < σ, silently biasing E[BᵀB] below AᵀA. No RNG draw happens
		// in that branch, so clamping cannot perturb the random stream.
		if p > 1 {
			p = 1
		}
		w := sigma / math.Sqrt(p)
		row := make([]float64, d)
		for l := 0; l < d; l++ {
			row[l] = w * svd.V.At(l, j)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return matrix.New(0, d)
	}
	return matrix.NewFromRows(rows)
}

// IIDRowSampleAggregated is the ablation variant discussed in §3.1.1: it
// samples rows of the aggregated form agg(A) = ΣVᵀ i.i.d. with replacement,
// proportional to σ_j² (the classic row-sampling scheme of [10,30,12]
// applied to agg(A) instead of A), taking m samples rescaled so that
// E[BᵀB] = AᵀA. The paper argues Bernoulli sampling is crucial for the
// improved analysis; this variant lets the benchmarks compare the two.
func IIDRowSampleAggregated(a *matrix.Dense, m int, rng *rand.Rand) (*matrix.Dense, error) {
	svd, err := linalg.ComputeSVD(a)
	if err != nil {
		return nil, err
	}
	d, _ := svd.V.Dims()
	total := 0.0
	for _, s := range svd.Sigma {
		total += s * s
	}
	if total == 0 || m <= 0 {
		return matrix.New(0, d), nil
	}
	// Cumulative distribution over singular indices. Zero singular values
	// carry no mass, so the last index with positive mass is the largest
	// the sampler may legally return: floating-point rounding can leave
	// cum[lastPos] a hair below 1, and without the clamp below a draw in
	// that gap would select a zero singular value and emit a 0/√0 = NaN row.
	cum := make([]float64, len(svd.Sigma))
	run := 0.0
	lastPos := -1
	for j, s := range svd.Sigma {
		run += s * s / total
		cum[j] = run
		if s > 0 {
			lastPos = j // sigma is sorted, so zeros only trail
		}
	}
	out := matrix.New(m, d)
	for i := 0; i < m; i++ {
		u := rng.Float64()
		j := 0
		for j < len(cum)-1 && cum[j] < u {
			j++
		}
		if j > lastPos {
			j = lastPos // rounding walked past the positive-mass prefix
		}
		p := svd.Sigma[j] * svd.Sigma[j] / total
		// Rescale by σ_j/√(m·p) so that E[Σ rows] = AᵀA.
		w := svd.Sigma[j] / math.Sqrt(float64(m)*p)
		row := out.Row(i)
		for l := 0; l < d; l++ {
			row[l] = w * svd.V.At(l, j)
		}
	}
	return out, nil
}

// Aggregated returns agg(A) = ΣVᵀ, the "aggregated form" whose rows SVS
// samples. It satisfies agg(A)ᵀ·agg(A) = AᵀA with orthogonal rows.
func Aggregated(a *matrix.Dense) (*matrix.Dense, error) {
	svd, err := linalg.ComputeSVD(a)
	if err != nil {
		return nil, err
	}
	return svd.Aggregated(), nil
}
