package core

import (
	"fmt"
	"math/rand"

	"repro/internal/fd"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// AdaptiveConfig parameterizes the §3.2 adaptive (ε,k)-sketch.
type AdaptiveConfig struct {
	// Eps is the target accuracy: coverr ≤ O(ε)·‖A−[A]_k‖F²/k.
	Eps float64
	// K is the rank parameter (k ≥ 1; for k = 0 use SVSSketch directly).
	K int
	// Delta is the failure probability of the randomized stage (default 0.1).
	Delta float64
	// Sampling switches the SVS stage between the quadratic (Theorem 6,
	// default) and linear (Theorem 5) sampling functions — the paper's own
	// ablation.
	Sampling SamplingFn
	// FinalCompress applies one more FD pass to the combined sketch Q,
	// reducing it to the optimal O(k/ε) rows at the cost of an extra O(ε)
	// error term (the remark after Theorem 7).
	FinalCompress bool
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Delta == 0 {
		c.Delta = 0.1
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		panic(fmt.Sprintf("core: eps %v out of (0,1)", c.Eps))
	}
	if c.K < 1 {
		panic(fmt.Sprintf("core: adaptive sketch needs k ≥ 1, got %d", c.K))
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		panic(fmt.Sprintf("core: delta %v out of (0,1)", c.Delta))
	}
	return c
}

// LocalTail runs the per-server first phase of the adaptive algorithm:
// B_i = FD(A_i, ε, k) followed by (T_i, R_i) = Decomp(B_i, k). T_i captures
// the top-k subspace of the local sketch; R_i is its tail, whose total
// squared Frobenius norm across servers is at most (1+ε)‖A−[A]_k‖F²
// (Lemma 5 + Eq. 9–11).
func LocalTail(a *matrix.Dense, eps float64, k int) (t, r *matrix.Dense, err error) {
	b, err := fd.SketchEpsK(a, eps, k)
	if err != nil {
		return nil, nil, err
	}
	return Decomp(b, k)
}

// ServerSketch is the output of one server in the adaptive algorithm:
// the top block T_i (k rows, always sent) and the sampled tail W_i.
type ServerSketch struct {
	T *matrix.Dense
	W *matrix.Dense
}

// Q returns the server's message Q_i = [T_i; W_i].
func (s *ServerSketch) Q() *matrix.Dense { return s.T.Stack(s.W) }

// AdaptiveResult is the outcome of the adaptive (ε,k)-sketch.
type AdaptiveResult struct {
	// PerServer holds each server's Q_i.
	PerServer []*ServerSketch
	// Q = [Q_1; …; Q_s], a (3ε,k)-sketch of A (Theorem 7).
	Q *matrix.Dense
	// Compressed is FD(Q, ε, k) when FinalCompress was requested, nil
	// otherwise: an (O(ε),k)-sketch of optimal size O(k/ε).
	Compressed *matrix.Dense
	// TailFrob2 is Σ_i ‖R_i‖F², the quantity exchanged between servers to
	// calibrate the sampling function (the protocol's only extra
	// communication: one word per server each way).
	TailFrob2 float64
}

// AdaptiveSketch runs the full §3.2 algorithm over a row partition of A
// given as parts (one matrix per server). It mirrors exactly what the
// distributed protocol computes; communication accounting lives in
// internal/distributed.
func AdaptiveSketch(parts []*matrix.Dense, cfg AdaptiveConfig, rng *rand.Rand) (*AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	if len(parts) == 0 {
		panic("core: AdaptiveSketch with no parts")
	}
	d := parts[0].Cols()
	s := len(parts)

	// Phase 1 (local, streaming): FD sketch + Decomp split.
	ts := make([]*matrix.Dense, s)
	rs := make([]*matrix.Dense, s)
	tailFrob2 := 0.0
	for i, p := range parts {
		if p.Cols() != d {
			panic(fmt.Sprintf("core: part %d has %d cols, want %d", i, p.Cols(), d))
		}
		t, r, err := LocalTail(p, cfg.Eps, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("server %d: %w", i, err)
		}
		ts[i], rs[i] = t, r
		tailFrob2 += r.Frob2()
	}

	// Phase 2: exchange Σ‖R_i‖F², build the shared sampling function with
	// α = ε/k relative to ‖R‖F² (so the SVS error is ≤ O(ε)‖R‖F²/k), and
	// sample each tail.
	alpha := cfg.Eps / float64(cfg.K)
	g := cfg.Sampling.Build(s, d, clampAlpha(alpha), cfg.Delta, tailFrob2)
	res := &AdaptiveResult{TailFrob2: tailFrob2}
	var qs []*matrix.Dense
	for i := 0; i < s; i++ {
		w, err := SVS(rs[i], g, rng)
		if err != nil {
			return nil, fmt.Errorf("server %d SVS: %w", i, err)
		}
		ss := &ServerSketch{T: ts[i], W: w}
		res.PerServer = append(res.PerServer, ss)
		qs = append(qs, ss.Q())
	}
	res.Q = matrix.Stack(qs...)

	if cfg.FinalCompress {
		c, err := fd.SketchEpsK(res.Q, cfg.Eps, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("final compress: %w", err)
		}
		res.Compressed = c
	}
	return res, nil
}

// clampAlpha keeps α inside the open interval the sampling constructors
// require; α = ε/k can reach or exceed 1 only for ε ≈ 1, k = 1, where any
// value below 1 is valid and the guarantee is vacuous anyway.
func clampAlpha(alpha float64) float64 {
	if alpha >= 1 {
		return 0.999999
	}
	return alpha
}

// SVSSketch is the §3.1 distributed (α,0)-sketch: every server runs SVS on
// its raw local matrix with a shared sampling function calibrated to the
// global ‖A‖F² (exchanged in one scalar round). Returns the per-server
// sketches; their concatenation B satisfies ‖BᵀB−AᵀA‖₂ ≤ O(α)‖A‖F² with
// probability 1−δ.
func SVSSketch(parts []*matrix.Dense, alpha, delta float64, sampling SamplingFn, rng *rand.Rand) ([]*matrix.Dense, error) {
	if len(parts) == 0 {
		panic("core: SVSSketch with no parts")
	}
	d := parts[0].Cols()
	frob2 := 0.0
	for _, p := range parts {
		frob2 += p.Frob2()
	}
	g := sampling.Build(len(parts), d, alpha, delta, frob2)
	out := make([]*matrix.Dense, len(parts))
	for i, p := range parts {
		b, err := SVS(p, g, rng)
		if err != nil {
			return nil, fmt.Errorf("server %d SVS: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// CovErr returns coverr(A,B) = ‖AᵀA−BᵀB‖₂ (Definition 1).
func CovErr(a, b *matrix.Dense) (float64, error) {
	return linalg.CovarianceError(a, b)
}

// EpsKBound returns the (ε,k)-sketch error budget of Definition 3:
// ε‖A−[A]_k‖F²/k, or ε‖A‖F² when k = 0.
func EpsKBound(a *matrix.Dense, eps float64, k int) (float64, error) {
	if k == 0 {
		return eps * a.Frob2(), nil
	}
	tail, err := linalg.TailEnergy(a, k)
	if err != nil {
		return 0, err
	}
	return eps * tail / float64(k), nil
}

// IsEpsKSketch checks Definition 3: whether coverr(A,B) ≤ ε‖A−[A]_k‖F²/k.
// It returns the verdict together with the measured error and the budget.
func IsEpsKSketch(a, b *matrix.Dense, eps float64, k int) (ok bool, err float64, bound float64, e error) {
	err, e = CovErr(a, b)
	if e != nil {
		return false, 0, 0, e
	}
	bound, e = EpsKBound(a, eps, k)
	if e != nil {
		return false, 0, 0, e
	}
	return err <= bound+1e-12, err, bound, nil
}

// ProjectionError returns the k-projection error ‖A − π_B^k(A)‖F² of
// Definition 2: project each row of A onto the span of the top-k right
// singular vectors of B. By the Pythagorean theorem this equals
// ‖A‖F² − ‖A·V_k‖F².
func ProjectionError(a, b *matrix.Dense, k int) (float64, error) {
	if k <= 0 {
		return a.Frob2(), nil
	}
	svd, err := linalg.ComputeSVD(b)
	if err != nil {
		return 0, err
	}
	d, r := svd.V.Dims()
	if a.Cols() != d {
		panic(fmt.Sprintf("core: ProjectionError dim mismatch %d vs %d", a.Cols(), d))
	}
	if k > r {
		k = r
	}
	vk := matrix.New(d, k)
	for j := 0; j < k; j++ {
		vk.SetCol(j, svd.V.Col(j))
	}
	proj := a.Mul(vk) // n×k
	return a.Frob2() - proj.Frob2(), nil
}
