package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Matrix-product estimation via coordinated priority sampling ("Matrix
// Product Sketching via Coordinated Sampling", Daliri–Freire–Li–Musco 2025):
// every party hashes global row indices with one shared seed to a uniform
// u_i ∈ (0,1), assigns row i the priority ‖row_i‖²/u_i, and keeps its
// top-priority rows. Because A's and B's samples reuse the same u_i, a row
// that is heavy in both matrices is kept by both sides with probability
// min(p_A, p_B) rather than p_A·p_B — that coordination is what makes the
// sample intersection large enough to estimate AᵀB = Σ_i a_i b_iᵀ
// unbiasedly, and it beats sketch-based methods when rows are sparse: the
// sample ships only the kept rows' nonzeros.

// productMix is the splitmix64 mixing function (shared with the
// CountSketch machinery in internal/pca — the repo's pattern for
// deterministic, seedable shared randomness).
func productMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SharedUniform maps (seed, global row index) to a uniform value in (0,1) —
// identical on every server, which is the whole point: this is the shared
// randomness that coordinates A's and B's samples. The value is never 0, so
// priorities ‖row‖²/u are finite.
func SharedUniform(seed, index int64) float64 {
	h := productMix(uint64(seed) ^ (uint64(index)*0x9e3779b97f4a7c15 + 0x85ebca6b))
	// 53 high bits → (0,1): the +1 offset excludes 0 exactly.
	return (float64(h>>11) + 1) / float64(1<<53)
}

// SampledRow is one priority-sampled row: its global index, squared norm,
// shared-seed priority, and the row itself (sparse; zero entries dropped,
// which is value-exact for products).
type SampledRow struct {
	Index    int64
	Norm2    float64
	Priority float64
	Vec      *matrix.SparseVector
}

// rowHeap is a min-heap on Priority, so the smallest kept priority is
// evicted first.
type rowHeap []SampledRow

func (h rowHeap) Len() int           { return len(h) }
func (h rowHeap) Less(i, j int) bool { return h[i].Priority < h[j].Priority }
func (h rowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *rowHeap) Push(x any)        { *h = append(*h, x.(SampledRow)) }
func (h *rowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// PrioritySampler keeps the `keep` highest-priority rows seen so far in one
// streaming pass, O(keep) memory. A server sampling for target size s keeps
// s+1 rows: the union of per-server top-(s+1) sets provably contains the
// global top-(s+1), so the coordinator recovers the exact global threshold
// τ (the (s+1)-th largest priority) from the merged candidates.
type PrioritySampler struct {
	seed int64
	keep int
	h    rowHeap
}

// NewPrioritySampler returns a sampler keeping the top `keep` priorities
// under the shared seed.
func NewPrioritySampler(seed int64, keep int) *PrioritySampler {
	if keep < 1 {
		panic(fmt.Sprintf("core: PrioritySampler with keep=%d", keep))
	}
	return &PrioritySampler{seed: seed, keep: keep}
}

// Offer considers the row with the given global index. Zero rows are
// skipped: their priority is 0, they can never enter a top set, and they
// contribute nothing to AᵀB. The vector is retained by reference; callers
// must pass rows the sampler may keep (copies, per the RowSource contract).
func (ps *PrioritySampler) Offer(index int64, vec *matrix.SparseVector) {
	n2 := vec.Norm2()
	if n2 == 0 {
		return
	}
	pr := n2 / SharedUniform(ps.seed, index)
	if len(ps.h) == ps.keep {
		if pr <= ps.h[0].Priority {
			return
		}
		heap.Pop(&ps.h)
	}
	heap.Push(&ps.h, SampledRow{Index: index, Norm2: n2, Priority: pr, Vec: vec})
}

// Rows returns the kept rows sorted by ascending global index — the
// deterministic wire order.
func (ps *PrioritySampler) Rows() []SampledRow {
	out := make([]SampledRow, len(ps.h))
	copy(out, ps.h)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// PriorityThreshold returns the global priority threshold τ for target
// sample size s over the merged candidate rows: the (s+1)-th largest
// priority, or 0 when at most s candidates exist (then every row is kept
// and the estimate is exact). Candidates must be every server's local
// top-(s+1) set, which guarantees the global (s+1)-th priority is present.
func PriorityThreshold(cand []SampledRow, s int) float64 {
	if len(cand) <= s {
		return 0
	}
	pr := make([]float64, len(cand))
	for i, c := range cand {
		pr[i] = c.Priority
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pr)))
	return pr[s]
}

// CoordinatedEstimate combines the merged candidate samples of A and B into
// the unbiased AᵀB estimate (d_A×d_B): compute each side's threshold τ for
// sample size s, keep the rows with priority > τ, and accumulate
// a_i·b_iᵀ/p_i over the samples' intersection with inclusion probability
// p_i = min(1, ‖a_i‖²/τ_A, ‖b_i‖²/τ_B). Row i is in A's sample iff
// u_i < ‖a_i‖²/τ_A and in B's iff u_i < ‖b_i‖²/τ_B — the same u_i, so
// P(both) is the min, not the product, and E[estimate] = AᵀB.
//
// Duplicate global indices within one side mean misconfigured shard offsets
// (rows double-counted) and are rejected.
func CoordinatedEstimate(candA, candB []SampledRow, s, dA, dB int) (*matrix.Dense, error) {
	if s < 2 {
		return nil, fmt.Errorf("core: coordinated estimate needs sample size ≥ 2, got %d", s)
	}
	if err := checkDistinct(candA, "A"); err != nil {
		return nil, err
	}
	if err := checkDistinct(candB, "B"); err != nil {
		return nil, err
	}
	tauA := PriorityThreshold(candA, s)
	tauB := PriorityThreshold(candB, s)
	inA := make(map[int64]SampledRow, s)
	for _, r := range candA {
		if tauA == 0 || r.Priority > tauA {
			inA[r.Index] = r
		}
	}
	est := matrix.New(dA, dB)
	for _, rb := range candB {
		if tauB != 0 && rb.Priority <= tauB {
			continue
		}
		ra, ok := inA[rb.Index]
		if !ok {
			continue
		}
		p := 1.0
		if tauA != 0 && ra.Norm2 < tauA {
			p = ra.Norm2 / tauA
		}
		if tauB != 0 && rb.Norm2 < tauB {
			if pb := rb.Norm2 / tauB; pb < p {
				p = pb
			}
		}
		w := 1 / p
		for j, ia := range ra.Vec.Indices {
			rb.Vec.AddTo(est.Row(ia), w*ra.Vec.Values[j])
		}
	}
	return est, nil
}

func checkDistinct(cand []SampledRow, side string) error {
	seen := make(map[int64]struct{}, len(cand))
	for _, r := range cand {
		if _, dup := seen[r.Index]; dup {
			return fmt.Errorf("core: coordinated estimate: duplicate global row %d in %s's candidates — shard offsets overlap", r.Index, side)
		}
		seen[r.Index] = struct{}{}
	}
	return nil
}

// ProductCertificate is the a-priori error bound of the coordinated
// estimate at sample size s: E‖Est − AᵀB‖F² ≤ 2‖A‖F²·‖B‖F²/(s−1) (each
// term's variance is at most (1/p_i−1)‖a_i‖²‖b_i‖² and the thresholds
// satisfy E[τ] ≤ ‖·‖F²/(s−1)), so by Chebyshev
//
//	‖Est − AᵀB‖F ≤ 2·√(2/(s−1))·‖A‖F·‖B‖F
//
// with probability at least 3/4. The bound needs only the Frobenius norms,
// which the servers ship exactly (one word each), so the coordinator
// certifies its output without ever seeing the inputs.
func ProductCertificate(s int, frobA, frobB float64) float64 {
	if s < 2 {
		return math.Inf(1)
	}
	return 2 * math.Sqrt(2/float64(s-1)) * frobA * frobB
}

// ProductErr is the realized Frobenius error ‖est − exact‖F of a product
// estimate.
func ProductErr(est, exact *matrix.Dense) float64 {
	r1, c1 := est.Dims()
	r2, c2 := exact.Dims()
	if r1 != r2 || c1 != c2 {
		panic(fmt.Sprintf("core: ProductErr dims %d×%d vs %d×%d", r1, c1, r2, c2))
	}
	e, x := est.Data(), exact.Data()
	sum := 0.0
	for i := range e {
		dlt := e[i] - x[i]
		sum += dlt * dlt
	}
	return math.Sqrt(sum)
}
