package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fd"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestDecompIdentity(t *testing.T) {
	// Lemma 6: BᵀB = TᵀT + RᵀR and ‖R‖F² = ‖B−[B]_k‖F².
	rng := rand.New(rand.NewSource(1))
	b := workload.LowRankPlusNoise(rng, 20, 8, 3, 5, 0.8, 0.5)
	for _, k := range []int{0, 1, 3, 8, 20} {
		tt, r, err := Decomp(b, k)
		if err != nil {
			t.Fatal(err)
		}
		sum := tt.Gram().Add(r.Gram())
		if !sum.EqualApprox(b.Gram(), 1e-7) {
			t.Fatalf("k=%d: TᵀT+RᵀR != BᵀB", k)
		}
		tail, err := linalg.TailEnergy(b, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Frob2()-tail) > 1e-7*(1+tail) {
			t.Fatalf("k=%d: ‖R‖F² = %v, want tail %v", k, r.Frob2(), tail)
		}
		wantT := k
		if m := min(b.Rows(), b.Cols()); wantT > m {
			wantT = m
		}
		if tt.Rows() != wantT {
			t.Fatalf("k=%d: T has %d rows, want %d", k, tt.Rows(), wantT)
		}
	}
}

func TestDecompNegativeKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decomp(matrix.New(2, 2), -1)
}

func TestLemma5TailShrinkage(t *testing.T) {
	// Lemma 5: ‖B−[B]_k‖F² ≤ (1+ε)‖A−[A]_k‖F² for B = FD(A, ε, k).
	rng := rand.New(rand.NewSource(2))
	a := workload.LowRankPlusNoise(rng, 200, 16, 4, 20, 0.7, 0.5)
	eps, k := 0.25, 4
	b, err := fd.SketchEpsK(a, eps, k)
	if err != nil {
		t.Fatal(err)
	}
	tailB, err := linalg.TailEnergy(b, k)
	if err != nil {
		t.Fatal(err)
	}
	tailA, err := linalg.TailEnergy(a, k)
	if err != nil {
		t.Fatal(err)
	}
	if tailB > (1+eps)*tailA+1e-9 {
		t.Fatalf("‖B−[B]_k‖F² = %v > (1+ε)·%v", tailB, tailA)
	}
}

func TestLocalTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := workload.LowRankPlusNoise(rng, 100, 10, 3, 10, 0.8, 0.3)
	tt, r, err := LocalTail(a, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Rows() != 3 {
		t.Fatalf("T rows = %d, want 3", tt.Rows())
	}
	// T+R together replicate the FD sketch's Gram.
	b, err := fd.SketchEpsK(a, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Gram().Add(r.Gram()).EqualApprox(b.Gram(), 1e-7) {
		t.Fatal("LocalTail does not preserve the FD Gram")
	}
}

func TestAdaptiveSketchGuarantee(t *testing.T) {
	// Theorem 7: Q is a (3ε,k)-sketch of A w.h.p., and
	// ‖Q‖F² = ‖A‖F² + O(‖A−[A]_k‖F²).
	rng := rand.New(rand.NewSource(4))
	eps, k := 0.25, 3
	fails := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		a := workload.LowRankPlusNoise(rng, 240, 16, k, 30, 0.7, 0.4)
		parts := workload.Split(a, 6, workload.Contiguous, nil)
		res, err := AdaptiveSketch(parts, AdaptiveConfig{Eps: eps, K: k}, rng)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := CovErr(a, res.Q)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := EpsKBound(a, 3*eps, k)
		if err != nil {
			t.Fatal(err)
		}
		if ce > bound {
			fails++
		}
		// Frobenius norm control.
		tail, err := linalg.TailEnergy(a, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Q.Frob2() > a.Frob2()+8*tail {
			t.Fatalf("trial %d: ‖Q‖F² = %v too large (‖A‖F²=%v, tail=%v)", trial, res.Q.Frob2(), a.Frob2(), tail)
		}
		if len(res.PerServer) != 6 {
			t.Fatalf("per-server count %d", len(res.PerServer))
		}
	}
	if fails > 2 {
		t.Fatalf("adaptive sketch exceeded (3ε,k) bound in %d/%d trials", fails, trials)
	}
}

func TestAdaptiveSketchTailBound(t *testing.T) {
	// Eq. (11): Σ‖R_i‖F² ≤ (1+ε)‖A−[A]_k‖F².
	rng := rand.New(rand.NewSource(5))
	eps, k := 0.2, 4
	a := workload.LowRankPlusNoise(rng, 300, 20, k, 25, 0.6, 0.5)
	parts := workload.Split(a, 5, workload.RoundRobin, nil)
	res, err := AdaptiveSketch(parts, AdaptiveConfig{Eps: eps, K: k}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := linalg.TailEnergy(a, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.TailFrob2 > (1+eps)*tail+1e-9 {
		t.Fatalf("Σ‖R_i‖F² = %v > (1+ε)‖A−[A]_k‖F² = %v", res.TailFrob2, (1+eps)*tail)
	}
}

func TestAdaptiveFinalCompress(t *testing.T) {
	// Remark after Theorem 7: one more FD gives optimal size with O(ε) error.
	rng := rand.New(rand.NewSource(6))
	eps, k := 0.25, 3
	a := workload.LowRankPlusNoise(rng, 200, 14, k, 20, 0.7, 0.4)
	parts := workload.Split(a, 8, workload.Contiguous, nil)
	res, err := AdaptiveSketch(parts, AdaptiveConfig{Eps: eps, K: k, FinalCompress: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compressed == nil {
		t.Fatal("Compressed must be set")
	}
	if res.Compressed.Rows() > fd.SketchSize(eps, k) {
		t.Fatalf("compressed %d rows > optimal %d", res.Compressed.Rows(), fd.SketchSize(eps, k))
	}
	ce, err := CovErr(a, res.Compressed)
	if err != nil {
		t.Fatal(err)
	}
	// Error budget: O(ε)·tail/k; constant from 3ε (Q) + ε·‖Q−[Q]k‖/k ≤ O(ε).
	bound, err := EpsKBound(a, 8*eps, k)
	if err != nil {
		t.Fatal(err)
	}
	if ce > bound {
		t.Fatalf("compressed coverr %v > %v", ce, bound)
	}
}

func TestAdaptiveLinearVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eps, k := 0.3, 2
	a := workload.LowRankPlusNoise(rng, 150, 12, k, 15, 0.7, 0.4)
	parts := workload.Split(a, 4, workload.Contiguous, nil)
	res, err := AdaptiveSketch(parts, AdaptiveConfig{Eps: eps, K: k, Sampling: SampleLinear}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CovErr(a, res.Q)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := EpsKBound(a, 4*eps, k)
	if err != nil {
		t.Fatal(err)
	}
	if ce > bound {
		t.Fatalf("linear-variant coverr %v > %v", ce, bound)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	parts := []*matrix.Dense{workload.Gaussian(rng, 10, 4)}
	for _, cfg := range []AdaptiveConfig{
		{Eps: 0, K: 1},
		{Eps: 1.2, K: 1},
		{Eps: 0.1, K: 0},
		{Eps: 0.1, K: 1, Delta: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cfg %+v: expected panic", cfg)
				}
			}()
			AdaptiveSketch(parts, cfg, rng)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty parts: expected panic")
			}
		}()
		AdaptiveSketch(nil, AdaptiveConfig{Eps: 0.1, K: 1}, rng)
	}()
}

func TestIsEpsKSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := workload.Gaussian(rng, 80, 8)
	b, err := fd.SketchEpsK(a, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, ce, bound, err := IsEpsKSketch(a, b, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("FD sketch must pass its own guarantee: %v > %v", ce, bound)
	}
	// The zero matrix fails for small ε (coverr = ‖AᵀA‖₂ > ε‖A‖F² here).
	ok, _, _, err = IsEpsKSketch(a, matrix.New(0, 8), 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty sketch should not satisfy a tight guarantee")
	}
}

func TestProjectionErrorAndLemma1(t *testing.T) {
	// Lemma 1: ‖A−π_B^k(A)‖F² ≤ ‖A−[A]_k‖F² + 2k·coverr(A,B).
	rng := rand.New(rand.NewSource(10))
	a := workload.LowRankPlusNoise(rng, 120, 12, 3, 15, 0.8, 0.5)
	k := 3
	b, err := fd.SketchEpsK(a, 0.2, k)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := ProjectionError(a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := linalg.TailEnergy(a, k)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CovErr(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pe > tail+2*float64(k)*ce+1e-8 {
		t.Fatalf("Lemma 1 violated: %v > %v + 2k·%v", pe, tail, ce)
	}
	// Projection error is at least the optimum.
	if pe < tail-1e-8 {
		t.Fatalf("projection error %v below optimal %v", pe, tail)
	}
	// Self-projection achieves the optimum exactly.
	self, err := ProjectionError(a, a, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-tail) > 1e-7*(1+tail) {
		t.Fatalf("π_A^k(A) error %v != tail %v", self, tail)
	}
	// k=0 convention.
	p0, err := ProjectionError(a, b, 0)
	if err != nil || p0 != a.Frob2() {
		t.Fatal("k=0 projection error must be ‖A‖F²")
	}
}

func TestEpsKBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := workload.Gaussian(rng, 30, 6)
	b0, err := EpsKBound(a, 0.1, 0)
	if err != nil || math.Abs(b0-0.1*a.Frob2()) > 1e-12 {
		t.Fatalf("k=0 bound %v", b0)
	}
	b2, err := EpsKBound(a, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := linalg.TailEnergy(a, 2)
	if math.Abs(b2-0.1*tail/2) > 1e-12 {
		t.Fatalf("k=2 bound %v", b2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
