// Package core implements the paper's primary contribution: the
// Singular Value Sampling (SVS) sketch (Algorithm 1), the linear and
// quadratic sampling functions of Theorems 5 and 6, the Decomp split of
// Lemma 6, and the adaptive (ε,k)-sketch of §3.2 (Theorem 7) that combines
// local Frequent Directions sketches with SVS on their tails.
//
// The algorithms here are the per-server computations; the protocols in
// internal/distributed orchestrate them across servers with exact
// communication accounting.
package core

import (
	"fmt"
	"math"
)

// SamplingFunc is the function g of Algorithm 1: g(σ²) is the probability of
// keeping the right singular vector whose squared singular value is σ².
type SamplingFunc interface {
	// Prob returns g(x) ∈ [0,1] for x = σ².
	Prob(x float64) float64
	// Name identifies the function in benchmark output.
	Name() string
}

// LinearSampling is the Theorem 5 function
//
//	g(x) = min{ √s·log(d/δ)·x / (α‖A‖F²), 1 }.
//
// With it, SVS achieves ‖BᵀB−AᵀA‖₂ ≤ 3α‖A‖F² and ‖B‖F ≤ 2‖A‖F with
// probability 1−δ at communication cost O(√s·d·log(d/δ)/α).
type LinearSampling struct {
	coef float64
}

// NewLinearSampling builds the Theorem 5 sampling function for s servers,
// dimension d, target error α‖A‖F², failure probability δ, and the global
// squared Frobenius norm frob2 = ‖A‖F².
func NewLinearSampling(s, d int, alpha, delta, frob2 float64) *LinearSampling {
	validateSamplingParams(s, d, alpha, delta)
	if frob2 <= 0 {
		return &LinearSampling{coef: 0}
	}
	return &LinearSampling{coef: math.Sqrt(float64(s)) * math.Log(float64(d)/delta) / (alpha * frob2)}
}

// Prob implements SamplingFunc.
func (l *LinearSampling) Prob(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Min(l.coef*x, 1)
}

// Name implements SamplingFunc.
func (l *LinearSampling) Name() string { return "linear" }

// QuadraticSampling is the Theorem 6 function
//
//	g(x) = min{ s·log(d/δ)·x² / (α²‖A‖F⁴), 1 }  if x ≥ α‖A‖F²/s,
//	       0                                     otherwise.
//
// The cutoff drops singular values too small to matter (their total
// contribution to the error is at most α‖A‖F², Eq. (7) in the paper) and is
// what keeps the Bernstein range term M bounded. With it, SVS achieves
// covariance error O(α‖A‖F²) at cost O(√s·d·√log(d/δ)/α) — the √log d
// improvement over the linear function that gives the paper its headline
// bound.
type QuadraticSampling struct {
	coef   float64 // s·log(d/δ)/(α²‖A‖F⁴)
	cutoff float64 // α‖A‖F²/s
}

// NewQuadraticSampling builds the Theorem 6 sampling function.
func NewQuadraticSampling(s, d int, alpha, delta, frob2 float64) *QuadraticSampling {
	validateSamplingParams(s, d, alpha, delta)
	if frob2 <= 0 {
		return &QuadraticSampling{coef: 0, cutoff: math.Inf(1)}
	}
	sf := float64(s)
	return &QuadraticSampling{
		coef:   sf * math.Log(float64(d)/delta) / (alpha * alpha * frob2 * frob2),
		cutoff: alpha * frob2 / sf,
	}
}

// Prob implements SamplingFunc.
func (q *QuadraticSampling) Prob(x float64) float64 {
	if x < q.cutoff {
		return 0
	}
	return math.Min(q.coef*x*x, 1)
}

// Name implements SamplingFunc.
func (q *QuadraticSampling) Name() string { return "quadratic" }

// Cutoff returns the small-singular-value threshold α‖A‖F²/s.
func (q *QuadraticSampling) Cutoff() float64 { return q.cutoff }

func validateSamplingParams(s, d int, alpha, delta float64) {
	if s <= 0 || d <= 0 {
		panic(fmt.Sprintf("core: invalid sampling params s=%d d=%d", s, d))
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("core: alpha %v out of (0,1)", alpha))
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("core: delta %v out of (0,1)", delta))
	}
}

// KeepAll is a degenerate sampling function that keeps every singular vector
// (g ≡ 1), turning SVS into the exact aggregated form agg(A) = ΣVᵀ. Useful
// as a correctness oracle in tests.
type KeepAll struct{}

// Prob implements SamplingFunc.
func (KeepAll) Prob(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1
}

// Name implements SamplingFunc.
func (KeepAll) Name() string { return "keep-all" }

// ExpectedRows returns Σ_j g(σ_j²), the expected number of sampled rows for
// the given squared singular values — the per-server expected communication
// is d times this.
func ExpectedRows(g SamplingFunc, sigma []float64) float64 {
	sum := 0.0
	for _, s := range sigma {
		sum += g.Prob(s * s)
	}
	return sum
}
