package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/matrix"
)

func sparseRows(rng *rand.Rand, n, d int, density float64) []*matrix.SparseVector {
	rows := make([]*matrix.SparseVector, n)
	for i := range rows {
		var idx []int
		var vals []float64
		for j := 0; j < d; j++ {
			if rng.Float64() < density {
				idx = append(idx, j)
				vals = append(vals, rng.NormFloat64())
			}
		}
		rows[i] = matrix.NewSparseVector(d, idx, vals)
	}
	return rows
}

func exactProduct(a, b []*matrix.SparseVector, dA, dB int) *matrix.Dense {
	out := matrix.New(dA, dB)
	for i := range a {
		for j, ia := range a[i].Indices {
			b[i].AddTo(out.Row(ia), a[i].Values[j])
		}
	}
	return out
}

func frob(rows []*matrix.SparseVector) float64 {
	s := 0.0
	for _, r := range rows {
		s += r.Norm2()
	}
	return math.Sqrt(s)
}

// sample runs per-shard priority samplers exactly as the distributed
// protocol does and returns the merged candidates.
func sampleShards(rows []*matrix.SparseVector, seed int64, s, shards int) []SampledRow {
	var cand []SampledRow
	per := (len(rows) + shards - 1) / shards
	for lo := 0; lo < len(rows); lo += per {
		hi := lo + per
		if hi > len(rows) {
			hi = len(rows)
		}
		ps := NewPrioritySampler(seed, s+1)
		for i := lo; i < hi; i++ {
			ps.Offer(int64(i), rows[i])
		}
		cand = append(cand, ps.Rows()...)
	}
	return cand
}

func TestSharedUniformDeterministicAndInUnit(t *testing.T) {
	seen := map[float64]bool{}
	for i := int64(0); i < 1000; i++ {
		u := SharedUniform(7, i)
		if u <= 0 || u >= 1 {
			t.Fatalf("SharedUniform(7,%d) = %v out of (0,1)", i, u)
		}
		if u != SharedUniform(7, i) {
			t.Fatalf("SharedUniform not deterministic at %d", i)
		}
		seen[u] = true
	}
	if len(seen) < 990 {
		t.Fatalf("only %d distinct values in 1000 draws", len(seen))
	}
	if SharedUniform(7, 3) == SharedUniform(8, 3) {
		t.Fatalf("different seeds gave the same value")
	}
}

func TestPrioritySamplerKeepsTopPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := sparseRows(rng, 200, 16, 0.4)
	const keep = 17
	ps := NewPrioritySampler(42, keep)
	type pr struct {
		idx int64
		p   float64
	}
	var all []pr
	for i, r := range rows {
		ps.Offer(int64(i), r)
		if n2 := r.Norm2(); n2 > 0 {
			all = append(all, pr{int64(i), n2 / SharedUniform(42, int64(i))})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	want := map[int64]bool{}
	for _, e := range all[:keep] {
		want[e.idx] = true
	}
	got := ps.Rows()
	if len(got) != keep {
		t.Fatalf("kept %d rows, want %d", len(got), keep)
	}
	for _, r := range got {
		if !want[r.Index] {
			t.Errorf("kept row %d not in the true top-%d", r.Index, keep)
		}
	}
}

func TestCoordinatedEstimateExactWhenSampleCoversInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, dA, dB = 60, 12, 8
	a := sparseRows(rng, n, dA, 0.5)
	b := sparseRows(rng, n, dB, 0.5)
	exact := exactProduct(a, b, dA, dB)
	candA := sampleShards(a, 9, n, 3) // s = n keeps everything
	candB := sampleShards(b, 9, n, 3)
	est, err := CoordinatedEstimate(candA, candB, n, dA, dB)
	if err != nil {
		t.Fatal(err)
	}
	if e := ProductErr(est, exact); e > 1e-12 {
		t.Fatalf("full-coverage estimate should be exact, err = %v", e)
	}
}

func TestCoordinatedEstimateUnbiasedAndCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, dA, dB, s = 600, 24, 16, 96
	a := sparseRows(rng, n, dA, 0.08)
	b := sparseRows(rng, n, dB, 0.08)
	exact := exactProduct(a, b, dA, dB)
	cert := ProductCertificate(s, frob(a), frob(b))

	mean := matrix.New(dA, dB)
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		candA := sampleShards(a, seed, s, 4)
		candB := sampleShards(b, seed, s, 4)
		est, err := CoordinatedEstimate(candA, candB, s, dA, dB)
		if err != nil {
			t.Fatal(err)
		}
		if e := ProductErr(est, exact); e > cert {
			t.Errorf("seed %d: err %v exceeds certificate %v", seed, e, cert)
		}
		md, ed := mean.Data(), est.Data()
		for i := range md {
			md[i] += ed[i] / trials
		}
	}
	// The mean over independent seeds must be much closer to the exact
	// product than any single estimate — the unbiasedness signature.
	meanErr := ProductErr(mean, exact)
	if meanErr > cert/3 {
		t.Fatalf("mean of %d estimates has err %v (certificate %v) — estimator looks biased", trials, meanErr, cert)
	}
}

func TestCoordinatedEstimateMatchesSingleShard(t *testing.T) {
	// Sharding only changes who holds which rows; the merged candidate set
	// determines the estimate, so 1-shard and 4-shard sampling of the same
	// input must agree bit for bit.
	rng := rand.New(rand.NewSource(4))
	const n, dA, dB, s = 300, 10, 10, 48
	a := sparseRows(rng, n, dA, 0.1)
	b := sparseRows(rng, n, dB, 0.1)
	e1, err := CoordinatedEstimate(sampleShards(a, 5, s, 1), sampleShards(b, 5, s, 1), s, dA, dB)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := CoordinatedEstimate(sampleShards(a, 5, s, 4), sampleShards(b, 5, s, 4), s, dA, dB)
	if err != nil {
		t.Fatal(err)
	}
	if e := ProductErr(e1, e4); e != 0 {
		t.Fatalf("shard-count changed the estimate by %v; want bit-identical", e)
	}
}

func TestCoordinatedEstimateRejectsDuplicateIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := sparseRows(rng, 10, 4, 1)
	cand := sampleShards(rows, 1, 10, 1)
	dup := append(append([]SampledRow{}, cand...), cand[0])
	if _, err := CoordinatedEstimate(dup, cand, 10, 4, 4); err == nil {
		t.Fatalf("duplicate global index not rejected")
	}
}

func TestProductCertificateShape(t *testing.T) {
	if !math.IsInf(ProductCertificate(1, 1, 1), 1) {
		t.Fatalf("s=1 certificate should be infinite")
	}
	c64 := ProductCertificate(65, 2, 3)
	want := 2 * math.Sqrt(2.0/64) * 6
	if math.Abs(c64-want) > 1e-15 {
		t.Fatalf("certificate = %v, want %v", c64, want)
	}
}
