package core

import "fmt"

// SamplingFn selects the SVS sampling function g — the typed replacement
// for the old positional `useLinear bool` argument that every layer
// (core, distributed, the facade, flags) now shares.
type SamplingFn int

const (
	// SampleQuadratic is the Theorem 6 quadratic sampling function
	// (the default; O(√s·d·√log(d/δ)/α) expected words).
	SampleQuadratic SamplingFn = iota
	// SampleLinear is the Theorem 5 linear sampling function.
	SampleLinear
)

// String implements fmt.Stringer (and the flag-value convention).
func (f SamplingFn) String() string {
	switch f {
	case SampleQuadratic:
		return "quadratic"
	case SampleLinear:
		return "linear"
	default:
		return fmt.Sprintf("SamplingFn(%d)", int(f))
	}
}

// ParseSamplingFn converts a flag string to a SamplingFn.
func ParseSamplingFn(s string) (SamplingFn, error) {
	switch s {
	case "quadratic", "quad", "":
		return SampleQuadratic, nil
	case "linear", "lin":
		return SampleLinear, nil
	default:
		return 0, fmt.Errorf("core: unknown sampling function %q (want quadratic or linear)", s)
	}
}

// Build instantiates the selected sampling function for s servers at
// dimension d, accuracy alpha, failure probability delta, and total mass
// frob2.
func (f SamplingFn) Build(s, d int, alpha, delta, frob2 float64) SamplingFunc {
	if f == SampleLinear {
		return NewLinearSampling(s, d, alpha, delta, frob2)
	}
	return NewQuadraticSampling(s, d, alpha, delta, frob2)
}
