package core

import (
	"math"
	"testing"
)

func TestLinearSamplingShape(t *testing.T) {
	g := NewLinearSampling(4, 64, 0.1, 0.1, 100)
	if g.Name() != "linear" {
		t.Fatal("name")
	}
	if g.Prob(0) != 0 || g.Prob(-1) != 0 {
		t.Fatal("g(≤0) must be 0")
	}
	// Linear in x until saturation.
	p1, p2 := g.Prob(0.001), g.Prob(0.002)
	if math.Abs(p2-2*p1) > 1e-12 {
		t.Fatalf("not linear: %v vs %v", p1, p2)
	}
	if g.Prob(1e9) != 1 {
		t.Fatal("must saturate at 1")
	}
	// Coefficient: √s·log(d/δ)/(α‖A‖F²) = 2·log(640)/10.
	wantCoef := 2 * math.Log(640) / 10
	if got := g.Prob(1.0); math.Abs(got-math.Min(wantCoef, 1)) > 1e-12 {
		t.Fatalf("coef: got %v want %v", got, wantCoef)
	}
}

func TestQuadraticSamplingShape(t *testing.T) {
	s, d, alpha, delta, frob2 := 9, 128, 0.2, 0.05, 50.0
	g := NewQuadraticSampling(s, d, alpha, delta, frob2)
	if g.Name() != "quadratic" {
		t.Fatal("name")
	}
	cutoff := alpha * frob2 / float64(s)
	if math.Abs(g.Cutoff()-cutoff) > 1e-12 {
		t.Fatalf("cutoff %v want %v", g.Cutoff(), cutoff)
	}
	if g.Prob(cutoff*0.99) != 0 {
		t.Fatal("below cutoff must be 0")
	}
	if g.Prob(cutoff) <= 0 {
		t.Fatal("at cutoff must be positive")
	}
	// Quadratic in x.
	x := 2 * cutoff
	p1, p2 := g.Prob(x), g.Prob(2*x)
	if p2 < 1 && math.Abs(p2-4*p1) > 1e-12 {
		t.Fatalf("not quadratic: %v vs %v", p1, p2)
	}
	if g.Prob(1e12) != 1 {
		t.Fatal("must saturate at 1")
	}
}

func TestSamplingZeroFrobenius(t *testing.T) {
	lin := NewLinearSampling(2, 8, 0.1, 0.1, 0)
	if lin.Prob(5) != 0 {
		t.Fatal("zero-mass linear must never sample")
	}
	quad := NewQuadraticSampling(2, 8, 0.1, 0.1, 0)
	if quad.Prob(5) != 0 {
		t.Fatal("zero-mass quadratic must never sample")
	}
}

func TestSamplingParamPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLinearSampling(0, 8, 0.1, 0.1, 1) },
		func() { NewLinearSampling(2, 0, 0.1, 0.1, 1) },
		func() { NewLinearSampling(2, 8, 0, 0.1, 1) },
		func() { NewLinearSampling(2, 8, 1, 0.1, 1) },
		func() { NewLinearSampling(2, 8, 0.1, 0, 1) },
		func() { NewQuadraticSampling(2, 8, 0.1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKeepAll(t *testing.T) {
	g := KeepAll{}
	if g.Prob(0.1) != 1 || g.Prob(0) != 0 || g.Name() == "" {
		t.Fatal("KeepAll wrong")
	}
}

func TestExpectedRows(t *testing.T) {
	g := KeepAll{}
	if got := ExpectedRows(g, []float64{1, 2, 0}); got != 2 {
		t.Fatalf("ExpectedRows = %v, want 2", got)
	}
	lin := NewLinearSampling(1, 4, 0.5, 0.5, 10)
	// g(x) = log(8)·x/5; σ = [1,2] → x = [1,4] → log(8)/5 + min(4·log(8)/5, 1).
	want := math.Log(8)/5 + 1
	if got := ExpectedRows(lin, []float64{1, 2}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExpectedRows = %v, want %v", got, want)
	}
}

// The paper's headline communication comparison (§3.1.2): the quadratic
// function's expected cost carries √log(d/δ) where the linear carries
// log(d/δ). Verify the analytic expected-rows bound: for any spectrum,
// Σ g_quad(σ²) ≤ √s·√log(d/δ)·Σσ²/(α‖A‖F²) — i.e. quadratic never exceeds
// the linear function built with √log in place of log.
func TestQuadraticDominatedBySqrtLogBudget(t *testing.T) {
	s, d, alpha, delta := 16, 256, 0.1, 0.1
	spectra := [][]float64{
		{10, 5, 3, 1, 0.5, 0.1},
		{1, 1, 1, 1, 1, 1, 1, 1},
		{100, 0.001},
	}
	for _, sig := range spectra {
		frob2 := 0.0
		for _, v := range sig {
			frob2 += v * v
		}
		g := NewQuadraticSampling(s, d, alpha, delta, frob2)
		got := ExpectedRows(g, sig)
		budget := math.Sqrt(float64(s)) * math.Sqrt(math.Log(float64(d)/delta)) / (alpha * frob2) * frob2
		if got > budget+1e-9 {
			t.Fatalf("spectrum %v: expected rows %v > √log budget %v", sig, got, budget)
		}
	}
}
