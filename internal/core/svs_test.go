package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/workload"
)

func TestAggregatedPreservesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := workload.Gaussian(rng, 40, 10)
	agg, err := Aggregated(a)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Gram().EqualApprox(a.Gram(), 1e-8) {
		t.Fatal("agg(A)ᵀagg(A) != AᵀA")
	}
	// agg rows are orthogonal: agg·aggᵀ is diagonal.
	g := agg.MulT(agg)
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if i != j && math.Abs(g.At(i, j)) > 1e-8 {
				t.Fatalf("agg rows not orthogonal at (%d,%d): %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestSVSKeepAllIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := workload.Gaussian(rng, 30, 8)
	b, err := SVS(a, KeepAll{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CovErr(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ce > 1e-8 {
		t.Fatalf("keep-all SVS must be exact; coverr = %v", ce)
	}
}

func TestSVSUnbiased(t *testing.T) {
	// Claim 3: E[BᵀB] = AᵀA. Check the Monte-Carlo average converges.
	rng := rand.New(rand.NewSource(3))
	a := workload.LowRankPlusNoise(rng, 40, 6, 3, 10, 0.8, 0.3)
	g := NewLinearSampling(1, 6, 0.5, 0.3, a.Frob2())
	trials := 600
	sum := matrix.New(6, 6)
	for i := 0; i < trials; i++ {
		b, err := SVS(a, g, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum = sum.Add(b.Gram())
	}
	avg := sum.Scale(1 / float64(trials))
	diff := avg.Sub(a.Gram())
	norm, err := linalg.SpectralNormSym(diff)
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo error shrinks like 1/√trials; allow a generous margin.
	if norm > 0.15*a.Frob2() {
		t.Fatalf("E[BᵀB] deviates from AᵀA by %v (‖A‖F² = %v)", norm, a.Frob2())
	}
}

func TestSVSErrorBoundQuadratic(t *testing.T) {
	// Theorem 6: coverr ≤ O(α)‖A‖F² with probability 1−δ, across several
	// seeds on a partitioned input (the concatenated-output setting of
	// Algorithm 2).
	rng := rand.New(rand.NewSource(4))
	alpha, delta := 0.2, 0.1
	fails := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		a := workload.PowerLawSpectrum(rng, 120, 16, 0.8, 10)
		parts := workload.Split(a, 4, workload.Contiguous, nil)
		bs, err := SVSSketch(parts, alpha, delta, SampleQuadratic, rng)
		if err != nil {
			t.Fatal(err)
		}
		b := matrix.Stack(bs...)
		ce, err := CovErr(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ce > 4*alpha*a.Frob2() {
			fails++
		}
	}
	// δ = 0.1 with the theorem's constant 4; allow a couple of failures.
	if fails > 4 {
		t.Fatalf("quadratic SVS exceeded 4α‖A‖F² in %d/%d trials", fails, trials)
	}
}

func TestSVSErrorBoundLinear(t *testing.T) {
	// Theorem 5: coverr ≤ 3α‖A‖F² and ‖B‖F ≤ 2‖A‖F with probability 1−δ.
	rng := rand.New(rand.NewSource(5))
	alpha, delta := 0.2, 0.1
	errFails, frobFails := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		a := workload.PowerLawSpectrum(rng, 100, 14, 0.6, 5)
		parts := workload.Split(a, 4, workload.Contiguous, nil)
		bs, err := SVSSketch(parts, alpha, delta, SampleLinear, rng)
		if err != nil {
			t.Fatal(err)
		}
		b := matrix.Stack(bs...)
		ce, err := CovErr(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ce > 3*alpha*a.Frob2() {
			errFails++
		}
		if b.Frob2() > 4*a.Frob2() { // (2‖A‖F)²
			frobFails++
		}
	}
	if errFails > 4 {
		t.Fatalf("linear SVS exceeded 3α‖A‖F² in %d/%d trials", errFails, trials)
	}
	if frobFails > 4 {
		t.Fatalf("‖B‖F > 2‖A‖F in %d/%d trials", frobFails, trials)
	}
}

func TestSVSCommunicationScaling(t *testing.T) {
	// The point of Theorem 6: per-server output is O(√s/(α)·√log d / s)
	// rows... in total O(√s·√log d/α) rows across servers, i.e. the total
	// SHRINKS per server as s grows. Compare total sampled rows at s=1 vs
	// s=64 on the same global matrix: with √s scaling the s=64 total should
	// be well below 64× the ... direct check: total rows ≤
	// √s·√log(d/δ)/α + s (cutoff saturation slack).
	rng := rand.New(rand.NewSource(6))
	alpha, delta := 0.1, 0.1
	d := 12
	for _, s := range []int{1, 4, 16, 64} {
		a := workload.Gaussian(rng, 64*8, d)
		parts := workload.Split(a, s, workload.Contiguous, nil)
		bs, err := SVSSketch(parts, alpha, delta, SampleQuadratic, rng)
		if err != nil {
			t.Fatal(err)
		}
		rows := 0
		for _, b := range bs {
			rows += b.Rows()
		}
		budget := math.Sqrt(float64(s))*math.Sqrt(math.Log(float64(d)/delta))/alpha + 3*math.Sqrt(float64(s)*math.Log(float64(d)/delta))/alpha
		if float64(rows) > budget {
			t.Fatalf("s=%d: %d rows > √s budget %v", s, rows, budget)
		}
	}
}

func TestIIDRowSampleAggregated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := workload.LowRankPlusNoise(rng, 50, 8, 3, 10, 0.7, 0.2)
	// Unbiasedness over many trials.
	trials, m := 400, 20
	sum := matrix.New(8, 8)
	for i := 0; i < trials; i++ {
		b, err := IIDRowSampleAggregated(a, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if b.Rows() != m {
			t.Fatalf("rows = %d, want %d", b.Rows(), m)
		}
		sum = sum.Add(b.Gram())
	}
	avg := sum.Scale(1 / float64(trials))
	norm, err := linalg.SpectralNormSym(avg.Sub(a.Gram()))
	if err != nil {
		t.Fatal(err)
	}
	if norm > 0.15*a.Frob2() {
		t.Fatalf("iid sample biased by %v", norm)
	}
	// Degenerate cases.
	empty, err := IIDRowSampleAggregated(a, 0, rng)
	if err != nil || empty.Rows() != 0 {
		t.Fatal("m=0 must give empty")
	}
	z, err := IIDRowSampleAggregated(matrix.New(5, 8), 3, rng)
	if err != nil || z.Rows() != 0 {
		t.Fatal("zero matrix must give empty sample")
	}
}

func TestSVSEmptyAndZeroInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewQuadraticSampling(2, 8, 0.1, 0.1, 1)
	b, err := SVS(matrix.New(0, 8), g, rng)
	if err != nil || b.Rows() != 0 || b.Cols() != 8 {
		t.Fatalf("empty input: %v rows=%d", err, b.Rows())
	}
	b2, err := SVS(matrix.New(5, 8), g, rng)
	if err != nil || b2.Rows() != 0 {
		t.Fatal("zero input must sample nothing")
	}
}

// overUnitySampling is a synthetic SamplingFunc returning p = 3 > 1 for
// every candidate — legal at the interface, since nothing caps Prob
// analytically. Every row must then be kept with weight exactly σ (a sure
// keep has unbiasedness weight 1/√1): the old code rescaled by σ/√3,
// silently biasing E[BᵀB] to AᵀA/3.
type overUnitySampling struct{}

func (overUnitySampling) Prob(x float64) float64 { return 3 }
func (overUnitySampling) Name() string           { return "over-unity" }

func TestSVSClampsOverUnityProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := workload.Gaussian(rng, 30, 8)
	b, err := SVS(a, overUnitySampling{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 8 {
		t.Fatalf("p>1 must keep every candidate: got %d of 8 rows", b.Rows())
	}
	ce, err := CovErr(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ce > 1e-8*a.Frob2() {
		t.Fatalf("p>1 keeps all rows, so BᵀB must equal AᵀA exactly; coverr = %v", ce)
	}
	// The clamp must not consume randomness: the same seeded generator run
	// against a p ≤ 1 function afterwards draws the same stream as a fresh
	// generator, i.e. the sure-keep branch made zero Float64 calls.
	want := rand.New(rand.NewSource(7))
	workload.Gaussian(want, 30, 8) // replay the stream position
	if g, w := rng.Float64(), want.Float64(); g != w {
		t.Fatalf("sure-keep branch consumed RNG draws: next %v, want %v", g, w)
	}
}
